#include "src/sim/farm.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/sim/cli.h"
#include "src/sim/farm_telemetry.h"
#include "src/sim/results_io.h"
#include "src/util/fs.h"
#include "src/util/json.h"

namespace icr::sim::farm {
namespace {

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// %.17g: shortest text that reparses (via the reader's strtod) to the
// exact same double — manifest probabilities survive the round trip.
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::uint64_t parse_hex64(const util::JsonValue& value) {
  return std::strtoull(value.as_string("0x0").c_str(), nullptr, 0);
}

std::uint64_t as_u64(const util::JsonValue& value) {
  return static_cast<std::uint64_t>(value.as_double(0.0));
}

[[noreturn]] void bad_document(const std::string& what) {
  throw std::runtime_error("farm: " + what);
}

void append_sampling_json(std::string& out, const SamplingOptions& s) {
  out += "{\"warmup\": " + std::to_string(s.warmup_instructions) +
         ", \"windows\": " + std::to_string(s.windows) +
         ", \"window_width\": " + std::to_string(s.window_width) +
         ", \"mode\": \"" + to_string(s.mode) + "\", \"seed\": \"" +
         hex64(s.seed) + "\"}";
}

SamplingOptions parse_sampling(const util::JsonValue& v) {
  SamplingOptions s;
  s.warmup_instructions = as_u64(v.get("warmup"));
  s.windows = static_cast<std::uint32_t>(as_u64(v.get("windows")));
  s.window_width = as_u64(v.get("window_width"));
  s.mode = cli::sample_mode_by_name(v.get("mode").as_string("systematic"));
  s.seed = parse_hex64(v.get("seed"));
  return s;
}

std::string unit_file_name(std::uint32_t unit) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "unit_%06u", unit);
  return buffer;
}

}  // namespace

std::vector<WorkUnit> shard_units(std::uint64_t total_cells,
                                  std::uint64_t unit_cells) {
  if (unit_cells == 0) unit_cells = 1;
  std::vector<WorkUnit> units;
  units.reserve(static_cast<std::size_t>(
      (total_cells + unit_cells - 1) / unit_cells));
  std::uint32_t index = 0;
  for (std::uint64_t begin = 0; begin < total_cells; begin += unit_cells) {
    WorkUnit unit;
    unit.index = index++;
    unit.begin = begin;
    unit.end = std::min(begin + unit_cells, total_cells);
    units.push_back(unit);
  }
  return units;
}

std::string Manifest::to_json() const {
  std::string out = "{\n  \"farm\": {\n";
  out += "    \"version\": " + std::to_string(version) + ",\n";
  out += "    \"config_hash\": \"" + hex64(config_hash) + "\",\n";
  out += "    \"base_seed\": \"" + hex64(base_seed) + "\",\n";
  out += "    \"instructions\": " + std::to_string(instructions) + ",\n";
  out += "    \"trials\": " + std::to_string(trials) + ",\n";
  out += std::string("    \"derive_seeds\": ") +
         (derive_seeds ? "true" : "false") + ",\n";
  out += "    \"variant_count\": " + std::to_string(variant_count) + ",\n";
  out += "    \"app_count\": " + std::to_string(app_count) + ",\n";
  out += "    \"total_cells\": " + std::to_string(total_cells) + ",\n";
  out += "    \"unit_cells\": " + std::to_string(unit_cells) + ",\n";
  out += "    \"unit_count\": " + std::to_string(unit_count) + ",\n";
  out += "    \"decay_window\": " + std::to_string(decay_window) + ",\n";
  out += "    \"fault_model\": \"" + util::json_escape(fault_model) + "\",\n";
  out += "    \"fault_probability\": " + format_double(fault_probability) +
         ",\n";
  out += "    \"sampling\": ";
  append_sampling_json(out, sampling);
  if (geometry.enabled()) {
    auto append_u32_array = [&out](const char* key,
                                   const std::vector<std::uint32_t>& values) {
      out += std::string("\"") + key + "\": [";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(values[i]);
      }
      out += ']';
    };
    out += ",\n    \"geometry\": {";
    append_u32_array("sizes", geometry.sizes);
    out += ", ";
    append_u32_array("assocs", geometry.assocs);
    out += ", ";
    append_u32_array("ways_disabled", geometry.ways_disabled);
    out += std::string(", \"pattern\": \"") +
           mem::way_pattern_name(geometry.pattern) + "\", \"way_seed\": \"" +
           hex64(geometry.way_seed) + "\"}";
  }
  if (trace.enabled()) {
    out += ",\n    \"trace\": {\"path\": \"" + util::json_escape(trace.path) +
           "\", \"shard_instructions\": " +
           std::to_string(trace.shard_instructions) + ", \"fingerprint\": \"" +
           hex64(trace.fingerprint) +
           "\", \"records\": " + std::to_string(trace.records) + "}";
  }
  out += ",\n    \"schemes\": [";
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += util::json_escape(schemes[i]);
    out += '"';
  }
  out += "],\n    \"apps\": [";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += util::json_escape(apps[i]);
    out += '"';
  }
  out += "]\n  }\n}\n";
  return out;
}

Manifest Manifest::parse(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  const util::JsonValue& f = doc.get("farm");
  if (!f.is_object()) bad_document("manifest has no \"farm\" object");
  Manifest m;
  m.version = static_cast<int>(f.get("version").as_double(-1));
  if (m.version != kFormatVersion) {
    bad_document("manifest version " + std::to_string(m.version) +
                 " (this build reads version " +
                 std::to_string(kFormatVersion) + ")");
  }
  m.config_hash = parse_hex64(f.get("config_hash"));
  m.base_seed = parse_hex64(f.get("base_seed"));
  m.instructions = as_u64(f.get("instructions"));
  m.trials = static_cast<std::uint32_t>(as_u64(f.get("trials")));
  m.derive_seeds = f.get("derive_seeds").as_bool(false);
  m.variant_count = static_cast<std::uint32_t>(as_u64(f.get("variant_count")));
  m.app_count = static_cast<std::uint32_t>(as_u64(f.get("app_count")));
  m.total_cells = as_u64(f.get("total_cells"));
  m.unit_cells = as_u64(f.get("unit_cells"));
  m.unit_count = static_cast<std::uint32_t>(as_u64(f.get("unit_count")));
  m.decay_window = as_u64(f.get("decay_window"));
  m.fault_model = f.get("fault_model").as_string("random");
  m.fault_probability = f.get("fault_probability").as_double(0.0);
  if (f.get("sampling").is_object()) {
    m.sampling = parse_sampling(f.get("sampling"));
  }
  if (f.get("geometry").is_object()) {
    const util::JsonValue& g = f.get("geometry");
    for (const util::JsonValue& v : g.get("sizes").items()) {
      m.geometry.sizes.push_back(static_cast<std::uint32_t>(as_u64(v)));
    }
    for (const util::JsonValue& v : g.get("assocs").items()) {
      m.geometry.assocs.push_back(static_cast<std::uint32_t>(as_u64(v)));
    }
    for (const util::JsonValue& v : g.get("ways_disabled").items()) {
      m.geometry.ways_disabled.push_back(
          static_cast<std::uint32_t>(as_u64(v)));
    }
    m.geometry.pattern = g.get("pattern").as_string("fixed") == "random"
                             ? mem::WayDisableConfig::Pattern::kRandom
                             : mem::WayDisableConfig::Pattern::kFixed;
    m.geometry.way_seed = parse_hex64(g.get("way_seed"));
  }
  if (f.get("trace").is_object()) {
    const util::JsonValue& t = f.get("trace");
    m.trace.path = t.get("path").as_string();
    m.trace.shard_instructions = as_u64(t.get("shard_instructions"));
    m.trace.fingerprint = parse_hex64(t.get("fingerprint"));
    m.trace.records = as_u64(t.get("records"));
  }
  for (const util::JsonValue& s : f.get("schemes").items()) {
    m.schemes.push_back(s.as_string());
  }
  for (const util::JsonValue& a : f.get("apps").items()) {
    m.apps.push_back(a.as_string());
  }
  if (m.total_cells == 0) bad_document("manifest grid is empty");
  if (m.unit_count == 0 ||
      m.unit_count != (m.total_cells + m.unit_cells - 1) / m.unit_cells) {
    bad_document("manifest sharding is inconsistent");
  }
  return m;
}

Manifest manifest_for(const CampaignSpec& spec, std::uint64_t unit_cells) {
  Manifest m;
  m.config_hash = campaign_config_hash(spec);
  m.base_seed = spec.base_seed;
  m.instructions = resolved_instruction_count(spec);
  m.trials = spec.trials == 0 ? 1 : spec.trials;
  m.derive_seeds = spec.derive_seeds;
  m.variant_count = static_cast<std::uint32_t>(spec.variants.size());
  m.app_count = static_cast<std::uint32_t>(spec.app_axis());
  m.total_cells = static_cast<std::uint64_t>(spec.variants.size()) *
                  spec.app_axis() * m.trials;
  m.trace = spec.trace;
  m.unit_cells = unit_cells == 0 ? 1 : unit_cells;
  m.unit_count = static_cast<std::uint32_t>(
      (m.total_cells + m.unit_cells - 1) / m.unit_cells);
  if (spec.geometry.enabled()) {
    // The expanded labels are not cli-resolvable; serialize the recorded
    // base labels plus the axes, and let readers re-expand.
    m.geometry = spec.geometry;
    m.schemes = spec.geometry.base_schemes;
  } else {
    for (const SchemeVariant& v : spec.variants) m.schemes.push_back(v.label);
  }
  for (const trace::App app : spec.apps) {
    m.apps.push_back(trace::to_string(app));
  }
  // The window is uniform for CLI-built specs; take it from the first
  // variant. Mixed-window specs are library territory — their workers get
  // the spec programmatically and this field is ignored (the config hash,
  // which folds every variant's window, still guards the match).
  if (!spec.variants.empty()) {
    m.decay_window = spec.variants.front().scheme.decay_window;
  }
  m.fault_model = fault::to_string(spec.config.fault_model);
  m.fault_probability = spec.config.fault_probability;
  m.sampling = spec.sampling;
  return m;
}

CampaignSpec spec_from_manifest(const Manifest& manifest) {
  CampaignSpec spec;
  for (const std::string& name : manifest.schemes) {
    spec.variants.emplace_back(
        name, cli::scheme_by_name(name).with_decay_window(
                  manifest.decay_window));
  }
  for (const std::string& name : manifest.apps) {
    spec.apps.push_back(cli::app_by_name(name));
  }
  spec.trials = manifest.trials;
  spec.base_seed = manifest.base_seed;
  spec.instructions = manifest.instructions;
  spec.derive_seeds = manifest.derive_seeds;
  spec.config.fault_model = cli::fault_by_name(manifest.fault_model);
  spec.config.fault_probability = manifest.fault_probability;
  spec.sampling = manifest.sampling;
  spec.trace = manifest.trace;
  if (manifest.geometry.enabled()) {
    // Re-run the deterministic expansion over the base variants; the
    // caller's config-hash check proves it reproduced the original grid.
    spec.geometry = manifest.geometry;
    spec.geometry.base_schemes.clear();
    expand_geometry_sweep(spec);
  }
  return spec;
}

std::string manifest_path(const std::string& spool) {
  return spool + "/manifest.json";
}

std::string unit_path(const std::string& spool, std::uint32_t unit) {
  return spool + "/units/" + unit_file_name(unit) + ".json";
}

std::string claim_path(const std::string& spool, std::uint32_t unit) {
  return spool + "/claims/" + unit_file_name(unit) + ".claim";
}

void init_spool(const std::string& spool, const Manifest& manifest) {
  util::fs::make_directories(spool + "/units");
  util::fs::make_directories(spool + "/claims");
  util::fs::atomic_write_text_file(manifest_path(spool), manifest.to_json());
}

Manifest load_manifest(const std::string& spool) {
  return Manifest::parse(util::fs::read_text_file(manifest_path(spool)));
}

std::size_t clear_stale_claims(const std::string& spool,
                               std::uint32_t unit_count,
                               std::vector<std::uint32_t>* cleared_units) {
  std::size_t cleared = 0;
  for (std::uint32_t u = 0; u < unit_count; ++u) {
    if (util::fs::exists(claim_path(spool, u)) &&
        !util::fs::exists(unit_path(spool, u))) {
      if (util::fs::remove_file(claim_path(spool, u))) {
        ++cleared;
        if (cleared_units != nullptr) cleared_units->push_back(u);
      }
    }
  }
  // A worker killed mid-publication can also leave a temp file next to the
  // unit records; they are never read (readers open exact paths) but are
  // dead weight, so sweep them too.
  for (const std::string& name : util::fs::list_directory(spool + "/units")) {
    if (name.find(".tmp.") != std::string::npos) {
      util::fs::remove_file(spool + "/units/" + name);
    }
  }
  return cleared;
}

CellRecord CellRecord::from_cell(const CellResult& cell) {
  CellRecord record;
  record.variant_idx = cell.cell.variant_idx;
  record.app_idx = cell.cell.app_idx;
  record.trial_idx = cell.cell.trial_idx;
  record.seed = cell.cell.seed;
  record.variant = cell.result.scheme;
  record.app = cell.result.app;
  const std::vector<double> values = metric_values(cell.result);
  record.metric_bits.resize(values.size());
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(record.metric_bits.data(), values.data(),
              values.size() * sizeof(double));
  record.sampling = cell.sampling;
  record.geometry = cell.geometry;
  return record;
}

std::vector<double> CellRecord::metrics() const {
  std::vector<double> values(metric_bits.size());
  std::memcpy(values.data(), metric_bits.data(),
              metric_bits.size() * sizeof(double));
  return values;
}

std::string unit_to_json(std::uint32_t unit,
                         const std::vector<CellRecord>& cells) {
  std::string out = "{\n  \"version\": " + std::to_string(kFormatVersion) +
                    ",\n  \"unit\": " + std::to_string(unit) +
                    ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellRecord& c = cells[i];
    out += "    {\"variant_idx\": " + std::to_string(c.variant_idx) +
           ", \"app_idx\": " + std::to_string(c.app_idx) +
           ", \"trial\": " + std::to_string(c.trial_idx) + ", \"seed\": \"" +
           hex64(c.seed) + "\", \"variant\": \"" +
           util::json_escape(c.variant) + "\", \"app\": \"" +
           util::json_escape(c.app) + "\"";
    if (c.geometry.present) {
      out += ", \"geometry\": {\"dl1_size\": " +
             std::to_string(c.geometry.dl1_size_bytes) +
             ", \"dl1_assoc\": " + std::to_string(c.geometry.dl1_assoc) +
             ", \"ways_disabled\": " +
             std::to_string(c.geometry.ways_disabled) + "}";
    }
    out += ", \"metric_bits\": [";
    for (std::size_t m = 0; m < c.metric_bits.size(); ++m) {
      if (m != 0) out += ", ";
      out += '"';
      out += hex64(c.metric_bits[m]);
      out += '"';
    }
    out += "], \"sampling\": {\"sampled\": ";
    out += c.sampling.sampled ? "true" : "false";
    out += ", \"budget\": " + std::to_string(c.sampling.budget) +
           ", \"warmup\": " +
           std::to_string(c.sampling.warmup_instructions) +
           ", \"windows\": " + std::to_string(c.sampling.windows) +
           ", \"measured\": " +
           std::to_string(c.sampling.measured_instructions) + "}}";
    if (i + 1 != cells.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::vector<CellRecord> parse_unit_json(const std::string& text,
                                        std::uint32_t expected_unit) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  const int version = static_cast<int>(doc.get("version").as_double(-1));
  if (version != kFormatVersion) {
    bad_document("unit record version " + std::to_string(version));
  }
  const std::uint32_t unit =
      static_cast<std::uint32_t>(as_u64(doc.get("unit")));
  if (unit != expected_unit) {
    bad_document("unit record is for unit " + std::to_string(unit) +
                 ", expected " + std::to_string(expected_unit));
  }
  std::vector<CellRecord> cells;
  for (const util::JsonValue& c : doc.get("cells").items()) {
    CellRecord record;
    record.variant_idx =
        static_cast<std::uint32_t>(as_u64(c.get("variant_idx")));
    record.app_idx = static_cast<std::uint32_t>(as_u64(c.get("app_idx")));
    record.trial_idx = static_cast<std::uint32_t>(as_u64(c.get("trial")));
    record.seed = parse_hex64(c.get("seed"));
    record.variant = c.get("variant").as_string();
    record.app = c.get("app").as_string();
    if (c.get("geometry").is_object()) {
      const util::JsonValue& g = c.get("geometry");
      record.geometry.present = true;
      record.geometry.dl1_size_bytes =
          static_cast<std::uint32_t>(as_u64(g.get("dl1_size")));
      record.geometry.dl1_assoc =
          static_cast<std::uint32_t>(as_u64(g.get("dl1_assoc")));
      record.geometry.ways_disabled =
          static_cast<std::uint32_t>(as_u64(g.get("ways_disabled")));
    }
    for (const util::JsonValue& bits : c.get("metric_bits").items()) {
      record.metric_bits.push_back(parse_hex64(bits));
    }
    const util::JsonValue& s = c.get("sampling");
    record.sampling.sampled = s.get("sampled").as_bool(false);
    record.sampling.budget = as_u64(s.get("budget"));
    record.sampling.warmup_instructions = as_u64(s.get("warmup"));
    record.sampling.windows =
        static_cast<std::uint32_t>(as_u64(s.get("windows")));
    record.sampling.measured_instructions = as_u64(s.get("measured"));
    cells.push_back(std::move(record));
  }
  return cells;
}

std::vector<CellRecord> run_unit(
    const CampaignSpec& spec, const WorkUnit& unit,
    std::uint64_t instructions,
    const std::function<void(std::uint64_t)>& on_cell) {
  const std::size_t apps = spec.app_axis();
  const std::size_t trials = spec.trials == 0 ? 1 : spec.trials;
  std::vector<CellRecord> records;
  records.reserve(static_cast<std::size_t>(unit.cells()));
  for (std::uint64_t index = unit.begin; index < unit.end; ++index) {
    if (on_cell) on_cell(index);
    // Same coordinate decomposition as CampaignRunner::run — grid order is
    // the one total order every executor shares.
    const std::size_t variant_idx =
        static_cast<std::size_t>(index / (apps * trials));
    const std::size_t app_idx =
        static_cast<std::size_t>((index / trials) % apps);
    const std::size_t trial_idx = static_cast<std::size_t>(index % trials);
    records.push_back(CellRecord::from_cell(run_campaign_cell(
        spec, variant_idx, app_idx, trial_idx, instructions)));
  }
  return records;
}

WorkerReport run_worker_loop(
    const std::string& spool, const CampaignSpec& spec,
    std::uint32_t max_units,
    const std::function<void(const WorkUnit&)>& on_unit_done,
    WorkerTelemetry* telemetry) {
  const Manifest manifest = load_manifest(spool);
  if (campaign_config_hash(spec) != manifest.config_hash) {
    bad_document("spec does not match the spool manifest (config hash " +
                 hex64(campaign_config_hash(spec)) + " vs manifest " +
                 hex64(manifest.config_hash) + ")");
  }
  const std::vector<WorkUnit> units =
      shard_units(manifest.total_cells, manifest.unit_cells);
  const std::string claim_body =
      "{\"pid\": " + std::to_string(::getpid()) + "}\n";
  if (telemetry != nullptr) telemetry->on_start(manifest);

  std::function<void(std::uint64_t)> on_cell;
  const WorkUnit* current = nullptr;
  if (telemetry != nullptr) {
    on_cell = [&telemetry, &current](std::uint64_t cell_index) {
      telemetry->on_cell_start(*current, cell_index);
    };
  }

  WorkerReport report;
  for (const WorkUnit& unit : units) {
    if (max_units != 0 && report.units_run >= max_units) break;
    if (util::fs::exists(unit_path(spool, unit.index))) continue;
    if (!util::fs::try_create_exclusive(claim_path(spool, unit.index),
                                        claim_body)) {
      // Someone else owns it (or owned it and died — see resume).
      if (telemetry != nullptr) telemetry->on_claim_conflict(unit);
      continue;
    }
    if (telemetry != nullptr) telemetry->on_claim(unit);
    current = &unit;
    const std::vector<CellRecord> records =
        run_unit(spec, unit, manifest.instructions, on_cell);
    util::fs::atomic_write_text_file(unit_path(spool, unit.index),
                                     unit_to_json(unit.index, records));
    ++report.units_run;
    report.cells_run += unit.cells();
    if (telemetry != nullptr) telemetry->on_unit_published(unit);
    if (on_unit_done) on_unit_done(unit);
  }
  if (telemetry != nullptr) telemetry->on_exit(report);
  return report;
}

SpoolStatus scan_spool(const std::string& spool, const Manifest& manifest) {
  SpoolStatus status;
  status.unit_count = manifest.unit_count;
  const std::vector<WorkUnit> units =
      shard_units(manifest.total_cells, manifest.unit_cells);
  // One readdir per directory instead of unit_count stat calls: spools
  // with hundreds of thousands of units scan in one pass.
  std::vector<bool> done(manifest.unit_count, false);
  for (const std::string& name : util::fs::list_directory(spool + "/units")) {
    unsigned unit = 0;
    if (std::sscanf(name.c_str(), "unit_%u.json", &unit) == 1 &&
        name == unit_file_name(unit) + ".json" && unit < done.size()) {
      done[unit] = true;
      ++status.units_done;
      status.cells_done += units[unit].cells();
    }
  }
  for (const std::string& name :
       util::fs::list_directory(spool + "/claims")) {
    unsigned unit = 0;
    if (std::sscanf(name.c_str(), "unit_%u.claim", &unit) == 1 &&
        unit < done.size() && !done[unit]) {
      ++status.claims_outstanding;
    }
  }
  return status;
}

FarmAggregator::FarmAggregator(const Manifest& manifest, std::ostream* csv,
                               std::ostream* json)
    : manifest_(manifest), csv_(csv), json_(json) {
  if (csv_ != nullptr) {
    *csv_ << results_csv_header(manifest_.sampling.enabled(),
                                manifest_.geometry.enabled());
  }
  if (json_ != nullptr) {
    CampaignMeta meta;
    meta.base_seed = manifest_.base_seed;
    meta.config_hash = manifest_.config_hash;
    meta.instructions = manifest_.instructions;
    meta.trials = manifest_.trials;
    meta.sampling = manifest_.sampling;
    meta.geometry = manifest_.geometry.enabled();
    // Farm exports never carry timing: wall time depends on the worker
    // fleet, and the byte-identity guarantee is against
    // to_json(campaign, include_timing=false).
    *json_ << results_json_prologue(
        meta, static_cast<std::size_t>(manifest_.total_cells),
        /*include_timing=*/false);
  }
}

void FarmAggregator::add_unit(std::uint32_t unit,
                              const std::vector<CellRecord>& records) {
  if (finished_) bad_document("aggregator already finished");
  if (unit != next_unit_) {
    bad_document("units must stream in order: got unit " +
                 std::to_string(unit) + ", expected " +
                 std::to_string(next_unit_));
  }
  ++next_unit_;
  const bool sampled = manifest_.sampling.enabled();
  const bool geometry = manifest_.geometry.enabled();
  std::string row;  // scratch for one cell; capacity bounded by the schema
  for (const CellRecord& record : records) {
    ++cells_emitted_;
    if (cells_emitted_ > manifest_.total_cells) {
      bad_document("more cells than the manifest grid holds");
    }
    const std::vector<double> metrics = record.metrics();
    if (csv_ != nullptr) {
      row.clear();
      append_results_csv_row(row, record.variant, record.app,
                             record.trial_idx, record.seed, metrics,
                             sampled ? &record.sampling : nullptr,
                             geometry ? &record.geometry : nullptr);
      *csv_ << row;
    }
    if (json_ != nullptr) {
      row.clear();
      append_results_json_cell(row, record.variant, record.app,
                               record.trial_idx, record.seed, metrics,
                               sampled ? &record.sampling : nullptr,
                               cells_emitted_ == manifest_.total_cells,
                               geometry ? &record.geometry : nullptr);
      *json_ << row;
    }
  }
}

void FarmAggregator::finish() {
  if (finished_) return;
  if (cells_emitted_ != manifest_.total_cells) {
    bad_document("aggregated " + std::to_string(cells_emitted_) + " of " +
                 std::to_string(manifest_.total_cells) +
                 " cells — refusing to export a truncated campaign");
  }
  if (json_ != nullptr) *json_ << results_json_epilogue();
  finished_ = true;
}

std::size_t FarmAggregator::state_bytes() const noexcept {
  // Fixed-size fields only: the streamed cells never accumulate here.
  return sizeof(*this);
}

void aggregate_spool(const std::string& spool, const Manifest& manifest,
                     const std::string& csv_out, const std::string& json_out) {
  std::ofstream csv;
  std::ofstream json;
  if (!csv_out.empty()) {
    csv.open(csv_out, std::ios::binary | std::ios::trunc);
    if (!csv) bad_document("cannot open '" + csv_out + "' for write");
  }
  if (!json_out.empty()) {
    json.open(json_out, std::ios::binary | std::ios::trunc);
    if (!json) bad_document("cannot open '" + json_out + "' for write");
  }
  FarmAggregator aggregator(manifest, csv.is_open() ? &csv : nullptr,
                            json.is_open() ? &json : nullptr);
  for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
    aggregator.add_unit(
        u, parse_unit_json(util::fs::read_text_file(unit_path(spool, u)), u));
  }
  aggregator.finish();
  if (csv.is_open()) {
    csv.flush();
    if (!csv) bad_document("write to '" + csv_out + "' failed");
  }
  if (json.is_open()) {
    json.flush();
    if (!json) bad_document("write to '" + json_out + "' failed");
  }
}

}  // namespace icr::sim::farm
