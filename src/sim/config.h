// The paper's Table 1 configuration, expressed over all subsystems.
#pragma once

#include <cstdint>

#include "src/cpu/pipeline.h"
#include "src/energy/energy_model.h"
#include "src/fault/fault_injector.h"
#include "src/mem/cache_geometry.h"
#include "src/mem/memory_hierarchy.h"

namespace icr::sim {

struct SimConfig {
  cpu::PipelineConfig pipeline;                       // 4-wide, RUU 16, LSQ 8
  mem::HierarchyConfig hierarchy;                     // L1I/L2/memory
  mem::CacheGeometry dl1 = mem::l1d_geometry_default();  // 16KB 4-way 64B
  // Degraded-geometry mode: faulty dL1 ways masked out of allocation and
  // replication-site search (docs/GEOMETRY.md). Default: none disabled.
  mem::WayDisableConfig dl1_way_disable;

  energy::EnergyParams energy;

  fault::FaultModel fault_model = fault::FaultModel::kRandom;
  double fault_probability = 0.0;  // per-cycle injection probability
  std::uint64_t fault_seed = 0x5EED;

  // Kim&Somani duplication-buffer baseline: 0 = disabled, otherwise the
  // number of word entries in the attached R-Cache.
  std::uint32_t rcache_entries = 0;

  // The Table-1 defaults (constructed members already match the paper).
  [[nodiscard]] static SimConfig table1() { return SimConfig{}; }
};

// Number of instructions benches simulate per (app, scheme) point.
// Overridable with the ICR_SIM_INSTRUCTIONS environment variable; the paper
// ran 500M, our synthetic workloads converge within ~1M (see DESIGN.md).
[[nodiscard]] std::uint64_t default_instruction_count();

}  // namespace icr::sim
