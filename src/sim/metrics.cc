#include "src/sim/metrics.h"

namespace icr::sim {

double normalized_cycles(const RunResult& result,
                         const RunResult& baseline) noexcept {
  return baseline.cycles == 0 ? 0.0
                              : static_cast<double>(result.cycles) /
                                    static_cast<double>(baseline.cycles);
}

double normalized_energy(const RunResult& result,
                         const RunResult& baseline) noexcept {
  const double base = baseline.energy.total_nj();
  return base == 0.0 ? 0.0 : result.energy.total_nj() / base;
}

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace icr::sim
