#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace icr::sim {
namespace {

// Applies `f` to every cumulative uint64 counter of a RunResult, in one
// canonical order. Template over R so const and mutable results share the
// single field list — keep this in sync when RunResult grows counters.
template <typename R, typename F>
void visit_counters(R& r, F&& f) {
  f(r.instructions);
  f(r.cycles);

  auto& d = r.dl1;
  f(d.loads);
  f(d.load_hits);
  f(d.load_misses);
  f(d.stores);
  f(d.store_hits);
  f(d.store_misses);
  f(d.loads_with_replica);
  f(d.replica_fills);
  f(d.replication_opportunities);
  f(d.replication_successes);
  f(d.opportunities_with_one);
  f(d.opportunities_with_two);
  f(d.replicas_created);
  f(d.site_searches);
  f(d.site_search_failures);
  f(d.evictions);
  f(d.writebacks);
  f(d.replica_evictions);
  f(d.dead_victim_writebacks);
  f(d.errors_detected);
  f(d.errors_corrected_by_replica);
  f(d.errors_corrected_by_ecc);
  f(d.errors_corrected_by_rcache);
  f(d.errors_refetched_from_l2);
  f(d.unrecoverable_loads);
  f(d.scrub_lines_checked);
  f(d.scrub_corrections);
  f(d.scrub_uncorrectable);
  f(d.parity_computations);
  f(d.ecc_computations);
  f(d.replica_updates);
  f(d.l1_read_accesses);
  f(d.l1_write_accesses);

  for (auto* cache : {&r.l1i, &r.l2}) {
    f(cache->accesses);
    f(cache->hits);
    f(cache->misses);
    f(cache->evictions);
    f(cache->writebacks);
  }

  auto& p = r.pipeline;
  f(p.cycles);
  f(p.committed);
  f(p.loads);
  f(p.stores);
  f(p.branches);
  f(p.mispredicted_branches);
  f(p.forwarded_loads);
  f(p.fetch_stall_cycles);
  f(p.silent_corrupt_loads);
  f(p.unrecoverable_loads);

  f(r.branch.lookups);
  f(r.branch.direction_mispredicts);
  f(r.branch.btb_misses);

  auto& ft = r.faults;
  f(ft.injections);
  f(ft.bits_flipped);
  f(ft.skipped_empty);
  f(ft.corrected);
  f(ft.replica_recovered);
  f(ft.detected_uncorrectable);
  f(ft.silent);

  auto& rc = r.rcache;
  f(rc.writes);
  f(rc.lookups);
  f(rc.hits);
  f(rc.recoveries);

  auto& ev = r.energy_events;
  f(ev.l1_reads);
  f(ev.l1_writes);
  f(ev.l2_reads);
  f(ev.l2_writes);
  f(ev.parity_computations);
  f(ev.ecc_computations);
}

}  // namespace

double normalized_cycles(const RunResult& result,
                         const RunResult& baseline) noexcept {
  return baseline.cycles == 0 ? 0.0
                              : static_cast<double>(result.cycles) /
                                    static_cast<double>(baseline.cycles);
}

double normalized_energy(const RunResult& result,
                         const RunResult& baseline) noexcept {
  const double base = baseline.energy.total_nj();
  return base == 0.0 ? 0.0 : result.energy.total_nj() / base;
}

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<std::uint64_t> counter_vector(const RunResult& r) {
  std::vector<std::uint64_t> out;
  out.reserve(80);
  visit_counters(r, [&](const std::uint64_t& v) { out.push_back(v); });
  return out;
}

RunResult subtract_counters(const RunResult& end, const RunResult& begin) {
  RunResult out = end;
  const std::vector<std::uint64_t> base = counter_vector(begin);
  std::size_t i = 0;
  visit_counters(out, [&](std::uint64_t& v) {
    v -= std::min(v, base[i]);
    ++i;
  });
  return out;
}

RunResult reconstruct_weighted(const std::vector<RunResult>& deltas,
                               const std::vector<double>& weights) {
  ICR_CHECK(!deltas.empty());
  ICR_CHECK(deltas.size() == weights.size());
  std::vector<double> acc(counter_vector(deltas.front()).size(), 0.0);
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    std::size_t i = 0;
    visit_counters(deltas[j], [&](const std::uint64_t& v) {
      acc[i] += weights[j] * static_cast<double>(v);
      ++i;
    });
  }
  RunResult out = deltas.front();
  std::size_t i = 0;
  visit_counters(out, [&](std::uint64_t& v) {
    v = acc[i] <= 0.0 ? 0
                      : static_cast<std::uint64_t>(std::llround(acc[i]));
    ++i;
  });
  return out;
}

}  // namespace icr::sim
