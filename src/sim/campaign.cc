#include "src/sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "src/obs/prof.h"
#include "src/trace/trace_v2.h"
#include "src/obs/throughput.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace icr::sim {
namespace {

// Folds `value` into a running SplitMix64 hash chain.
void hash_fold(std::uint64_t& state, std::uint64_t value) noexcept {
  state = mix64(state ^ mix64(value));
}

void hash_fold(std::uint64_t& state, const std::string& text) noexcept {
  hash_fold(state, text.size());
  for (const char c : text) {
    hash_fold(state, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
}

void hash_fold_config(std::uint64_t& state, const SimConfig& config) noexcept {
  hash_fold(state, static_cast<std::uint64_t>(config.fault_model));
  // Bit pattern, not value: hashing doubles through the representation
  // keeps the fold exact for every probability.
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof config.fault_probability);
  __builtin_memcpy(&bits, &config.fault_probability, sizeof bits);
  hash_fold(state, bits);
  hash_fold(state, config.fault_seed);
  hash_fold(state, config.rcache_entries);
  hash_fold(state, config.dl1.size_bytes);
  hash_fold(state, config.dl1.associativity);
  hash_fold(state, config.dl1.line_bytes);
  if (config.dl1_way_disable.enabled()) {
    // Way-disabling changes the numbers, so the full draw configuration
    // fingerprints — but only when enabled, keeping hashes of undegraded
    // configs stable across versions.
    hash_fold(state, 0xD15AB1EDULL);  // domain separator
    hash_fold(state, config.dl1_way_disable.count);
    hash_fold(state, config.dl1_way_disable.fixed_mask);
    hash_fold(state,
              static_cast<std::uint64_t>(config.dl1_way_disable.pattern));
    hash_fold(state, config.dl1_way_disable.seed);
  }
}

// Runs one cell of the expanded grid; the only writer of cells[index].
CellResult run_cell(const CampaignSpec& spec, std::size_t variant_idx,
                    std::size_t app_idx, std::size_t trial_idx,
                    std::uint64_t instructions) {
  const SchemeVariant& variant = spec.variants[variant_idx];
  const bool traced = spec.trace.enabled();
  const std::string cell_label =
      traced ? trace_shard_label(spec, app_idx)
             : std::string(trace::to_string(spec.apps[app_idx]));
  ICR_PROF_ZONE_LABELED("Campaign::cell",
                        variant.label + "/" + cell_label + "/trial " +
                            std::to_string(trial_idx));

  SimConfig config = variant.config ? *variant.config : spec.config;
  std::uint64_t budget = instructions;

  CellResult cell;
  cell.cell.variant_idx = static_cast<std::uint32_t>(variant_idx);
  cell.cell.app_idx = static_cast<std::uint32_t>(app_idx);
  cell.cell.trial_idx = static_cast<std::uint32_t>(trial_idx);
  if (spec.geometry.enabled()) {
    cell.geometry.present = true;
    cell.geometry.dl1_size_bytes = config.dl1.size_bytes;
    cell.geometry.dl1_assoc = config.dl1.associativity;
    const mem::WayDisableConfig& wd = config.dl1_way_disable;
    cell.geometry.ways_disabled =
        wd.fixed_mask != 0
            ? static_cast<std::uint32_t>(std::popcount(wd.fixed_mask))
            : wd.count;
  }

  std::uint64_t workload_seed = 0;
  if (spec.derive_seeds) {
    const std::uint64_t seed =
        derive_cell_seed(spec.base_seed, variant_idx, app_idx, trial_idx);
    cell.cell.seed = seed;
    // Two decorrelated sub-streams: one for the synthetic workload, one
    // for fault injection, so fault timing never aliases address streams.
    // Trace cells have no generator; they discard the workload stream but
    // still consume it, keeping fault seeds aligned with synthetic cells
    // at the same coordinates.
    std::uint64_t state = seed;
    workload_seed = split_mix64(state);
    config.fault_seed = split_mix64(state);
  }

  Simulator simulator = [&]() -> Simulator {
    if (traced) {
      trace::OpenedTrace opened = trace::open_trace(spec.trace.path);
      if (spec.trace.fingerprint != 0 &&
          opened.info.fingerprint != spec.trace.fingerprint) {
        throw std::runtime_error(
            "trace campaign: " + spec.trace.path +
            " does not match the campaign's trace fingerprint (the file "
            "changed since the campaign was planned)");
      }
      const TraceShard shard = trace_shard(spec, app_idx);
      budget = shard.instructions;
      opened.source->seek_to(shard.begin);
      return Simulator(config, variant.scheme, std::move(opened.source),
                       cell_label);
    }
    trace::WorkloadProfile profile = trace::profile_for(spec.apps[app_idx]);
    if (spec.derive_seeds) profile.seed = workload_seed;
    return Simulator(config, variant.scheme, std::move(profile));
  }();
  if (spec.obs.any()) simulator.enable_observability(spec.obs);
  if (spec.rel.any()) simulator.enable_rel(spec.rel);
  if (spec.sampling.enabled()) {
    SamplingOptions sampling = spec.sampling;
    if (sampling.mode == SampleMode::kRandom) {
      // Per-cell placement stream, stateless like the workload/fault seeds
      // above, so sampled campaigns stay thread-count independent.
      sampling.seed = derive_cell_seed(spec.base_seed ^ mix64(sampling.seed),
                                       variant_idx, app_idx, trial_idx);
    }
    SampledRunResult sampled =
        SamplingController(simulator, sampling).run(budget);
    cell.result = std::move(sampled.estimate);
    cell.sampling = sampled.provenance;
  } else {
    cell.result = simulator.run(budget);
  }
  cell.result.scheme = variant.label;
  if (spec.obs.any()) {
    cell.obs = std::make_unique<obs::CellObservability>(
        simulator.collect_observability());
  }
  if (spec.rel.any()) {
    cell.rel = std::make_unique<rel::RelReport>(simulator.collect_rel());
  }
  return cell;
}

// Thread-safe campaign progress reporter. Workers call note() after each
// finished cell; the completion counter is lock-free, and only the (rate
// limited) printing takes a mutex.
class ProgressReporter {
 public:
  // `instructions_per_cell` feeds the simulated-MIPS readout; 0 hides it.
  ProgressReporter(const ProgressOptions& options, std::size_t total,
                   std::uint64_t instructions_per_cell)
      : options_(options),
        total_(total),
        instructions_per_cell_(instructions_per_cell),
        start_(std::chrono::steady_clock::now()),
        last_print_(start_) {}

  std::size_t note() {
    const std::size_t done = completed_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.live_cells_done != nullptr) {
      options_.live_cells_done->store(done, std::memory_order_relaxed);
    }
    if (!options_.enabled) return done;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    const std::chrono::duration<double> since_print = now - last_print_;
    const bool final_cell = done == total_;
    if (since_print.count() < options_.min_interval_seconds &&
        !(final_cell && printed_)) {
      return done;
    }
    const std::chrono::duration<double> elapsed = now - start_;
    // Shared zero-guarded arithmetic (src/obs/throughput.h): before any
    // cell completes (or when the clock has not advanced) there is no rate
    // to divide by, and the ETA prints as "ETA --" instead of a bogus
    // number.
    const obs::Throughput t =
        obs::estimate_throughput(done, total_, elapsed.count());
    const double mips =
        obs::simulated_mips(done, instructions_per_cell_, elapsed.count());
    std::fprintf(stderr,
                 "campaign: %zu/%zu cells (%.1f%%)  %.2f cells/s  "
                 "%.1f MIPS  %s\n",
                 done, total_, t.percent, t.rate, mips,
                 obs::format_eta(t).c_str());
    last_print_ = now;
    printed_ = true;
    return done;
  }

  [[nodiscard]] std::size_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  ProgressOptions options_;
  std::size_t total_;
  std::uint64_t instructions_per_cell_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  std::atomic<std::size_t> completed_{0};
  std::mutex mutex_;
  bool printed_ = false;
};

std::atomic<bool> g_default_progress_enabled{false};

}  // namespace

std::size_t CampaignSpec::app_axis() const {
  return trace.enabled() ? trace_shard_count(*this) : apps.size();
}

void resolve_trace_campaign(CampaignSpec& spec) {
  if (!spec.trace.enabled()) return;
  const trace::TraceInfo info = trace::probe_trace(spec.trace.path);
  if (info.records == 0) {
    throw std::runtime_error("trace campaign: " + spec.trace.path +
                             " is an empty trace");
  }
  spec.trace.fingerprint = info.fingerprint;
  spec.trace.records = info.records;
}

std::string geometry_label_suffix(std::uint32_t size_bytes,
                                  std::uint32_t assoc,
                                  std::uint32_t ways_disabled) {
  const std::string size = size_bytes % 1024 == 0
                               ? std::to_string(size_bytes / 1024) + "K"
                               : std::to_string(size_bytes);
  return "@" + size + "/" + std::to_string(assoc) + "w-d" +
         std::to_string(ways_disabled);
}

void expand_geometry_sweep(CampaignSpec& spec) {
  if (!spec.geometry.enabled()) return;
  if (!spec.geometry.base_schemes.empty()) {
    throw std::invalid_argument(
        "expand_geometry_sweep: spec already expanded (base_schemes set)");
  }
  GeometrySweep& sweep = spec.geometry;
  // Absent axes sweep the single value the spec already carries.
  std::vector<std::uint32_t> sizes = sweep.sizes;
  std::vector<std::uint32_t> assocs = sweep.assocs;
  std::vector<std::uint32_t> kvals = sweep.ways_disabled;
  if (sizes.empty()) sizes.push_back(spec.config.dl1.size_bytes);
  if (assocs.empty()) assocs.push_back(spec.config.dl1.associativity);
  if (kvals.empty()) kvals.push_back(0);

  std::vector<SchemeVariant> expanded;
  expanded.reserve(spec.variants.size() * sizes.size() * assocs.size() *
                   kvals.size());
  for (const SchemeVariant& base : spec.variants) {
    sweep.base_schemes.push_back(base.label);
    for (const std::uint32_t size : sizes) {
      for (const std::uint32_t assoc : assocs) {
        for (const std::uint32_t k : kvals) {
          // Infeasible grid cells (a 2-way set cannot lose 2 ways) are
          // skipped, not errors: a rectangular sizes x assocs x k request
          // naturally contains them. The skip is deterministic, so
          // spec_from_manifest's re-expansion reproduces the same grid.
          if (k >= assoc) continue;
          SchemeVariant v = base;
          SimConfig config = base.config ? *base.config : spec.config;
          config.dl1.size_bytes = size;
          config.dl1.associativity = assoc;
          config.dl1.validate();
          config.dl1_way_disable = mem::WayDisableConfig{};
          if (k != 0) {
            config.dl1_way_disable.count = k;
            config.dl1_way_disable.pattern = sweep.pattern;
            config.dl1_way_disable.seed = sweep.way_seed;
          }
          config.dl1_way_disable.validate(assoc);
          v.label = base.label + geometry_label_suffix(size, assoc, k);
          v.config = config;
          expanded.push_back(std::move(v));
        }
      }
    }
  }
  spec.variants = std::move(expanded);
}

std::uint64_t resolved_instruction_count(const CampaignSpec& spec) {
  if (spec.instructions != 0) return spec.instructions;
  if (spec.trace.enabled()) {
    if (spec.trace.records == 0) {
      throw std::runtime_error(
          "trace campaign: record count unknown; call "
          "resolve_trace_campaign() before expanding the grid");
    }
    return spec.trace.records;
  }
  return default_instruction_count();
}

namespace {
// Interval width: the requested shard size clamped to the budget; 0 means
// one shard covering everything.
std::uint64_t trace_shard_width(const CampaignSpec& spec,
                                std::uint64_t total) {
  return spec.trace.shard_instructions == 0
             ? total
             : std::min(spec.trace.shard_instructions, total);
}
}  // namespace

std::size_t trace_shard_count(const CampaignSpec& spec) {
  const std::uint64_t total = resolved_instruction_count(spec);
  const std::uint64_t width = trace_shard_width(spec, total);
  return static_cast<std::size_t>((total + width - 1) / width);
}

TraceShard trace_shard(const CampaignSpec& spec, std::size_t shard_idx) {
  const std::uint64_t total = resolved_instruction_count(spec);
  const std::uint64_t width = trace_shard_width(spec, total);
  TraceShard shard;
  shard.begin = width * shard_idx;
  shard.instructions = std::min(width, total - shard.begin);
  return shard;
}

std::string trace_shard_label(const CampaignSpec& spec,
                              std::size_t shard_idx) {
  const TraceShard shard = trace_shard(spec, shard_idx);
  std::string base = spec.trace.path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return base + "@" + std::to_string(shard.begin) + "+" +
         std::to_string(shard.instructions);
}

CellResult run_campaign_cell(const CampaignSpec& spec, std::size_t variant_idx,
                             std::size_t app_idx, std::size_t trial_idx,
                             std::uint64_t instructions) {
  return run_cell(spec, variant_idx, app_idx, trial_idx, instructions);
}

void CampaignRunner::set_default_progress_enabled(bool enabled) noexcept {
  g_default_progress_enabled.store(enabled, std::memory_order_relaxed);
}

bool CampaignRunner::default_progress_enabled() noexcept {
  return g_default_progress_enabled.load(std::memory_order_relaxed);
}

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::size_t variant_idx, std::size_t app_idx,
                               std::size_t trial_idx) noexcept {
  // Chained SplitMix64: each coordinate perturbs the generator state, so
  // (1,0,0) and (0,1,0) land in unrelated regions of the stream.
  std::uint64_t state = base_seed;
  std::uint64_t seed = split_mix64(state);
  state ^= mix64(0xA11CE5ULL + variant_idx);
  seed ^= split_mix64(state);
  state ^= mix64(0xB0B5ULL + (static_cast<std::uint64_t>(app_idx) << 20));
  seed ^= split_mix64(state);
  state ^= mix64(0xCAFE5ULL + (static_cast<std::uint64_t>(trial_idx) << 40));
  seed ^= split_mix64(state);
  return seed;
}

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ICR_SIM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return util::ThreadPool::hardware_threads();
}

std::uint64_t campaign_config_hash(const CampaignSpec& spec) {
  std::uint64_t state = 0x1C2C0DE5ULL;
  hash_fold(state, spec.variants.size());
  for (const SchemeVariant& v : spec.variants) {
    hash_fold(state, v.label);
    hash_fold(state, v.scheme.name);
    hash_fold(state, v.scheme.decay_window);
    hash_fold(state, v.scheme.scrub_interval);
    hash_fold(state, static_cast<std::uint64_t>(v.scheme.victim_policy));
    hash_fold(state, static_cast<std::uint64_t>(v.scheme.write_policy));
    hash_fold(state, (v.scheme.replication_enabled ? 1u : 0u) |
                         (v.scheme.speculative_ecc_loads ? 2u : 0u) |
                         (v.scheme.leave_replicas_on_eviction ? 4u : 0u));
    if (v.config) hash_fold_config(state, *v.config);
  }
  hash_fold(state, spec.apps.size());
  for (const trace::App app : spec.apps) {
    hash_fold(state, static_cast<std::uint64_t>(app));
  }
  hash_fold_config(state, spec.config);
  hash_fold(state, resolved_instruction_count(spec));
  hash_fold(state, spec.trials);
  hash_fold(state, spec.base_seed);
  hash_fold(state, spec.derive_seeds ? 1 : 0);
  if (spec.sampling.enabled()) {
    // Sampling changes the numbers, so it fingerprints — but only when
    // enabled, keeping hashes of unsampled specs stable across versions.
    hash_fold(state, 0x5A3D11ULL);  // domain separator
    hash_fold(state, spec.sampling.warmup_instructions);
    hash_fold(state, spec.sampling.windows);
    hash_fold(state, spec.sampling.window_width);
    hash_fold(state, static_cast<std::uint64_t>(spec.sampling.mode));
    hash_fold(state, spec.sampling.seed);
  }
  if (spec.trace.enabled()) {
    // The trace's content identity and interval decomposition determine
    // every cell; the path does not fold (moving a file never changes the
    // experiment). Folds only when a trace is attached, keeping synthetic
    // spec hashes stable across versions.
    hash_fold(state, 0x7C4CE5ULL);  // domain separator
    hash_fold(state, spec.trace.fingerprint);
    hash_fold(state, spec.trace.records);
    hash_fold(state, spec.trace.shard_instructions);
  }
  return state;
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) const {
  ICR_PROF_ZONE("Campaign::run");
  const std::uint64_t instructions = resolved_instruction_count(spec);
  const std::size_t apps = spec.app_axis();
  const std::size_t trials = spec.trials == 0 ? 1 : spec.trials;
  const std::size_t total = spec.variants.size() * apps * trials;

  CampaignResult result;
  result.meta.base_seed = spec.base_seed;
  result.meta.config_hash = campaign_config_hash(spec);
  result.meta.instructions = instructions;
  result.meta.trials = static_cast<std::uint32_t>(trials);
  result.meta.sampling = spec.sampling;
  result.meta.geometry = spec.geometry.enabled();
  result.cells.resize(total);

  const auto start = std::chrono::steady_clock::now();
  const unsigned threads =
      static_cast<unsigned>(std::min<std::size_t>(threads_, total == 0 ? 1 : total));
  result.meta.threads = threads;

  ProgressReporter reporter(progress_, total, instructions);
  auto run_index = [&](std::size_t index) {
    const std::size_t variant_idx = index / (apps * trials);
    const std::size_t app_idx = (index / trials) % apps;
    const std::size_t trial_idx = index % trials;
    result.cells[index] =
        run_cell(spec, variant_idx, app_idx, trial_idx, instructions);
    reporter.note();
  };

  if (threads <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) run_index(i);
  } else {
    // The calling thread participates in parallel_for, so N-way parallelism
    // needs N-1 pool workers.
    util::ThreadPool pool(threads - 1);
    util::parallel_for(pool, total, run_index);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.meta.completed_cells = reporter.completed();
  result.meta.wall_seconds = elapsed.count();
  result.meta.cells_per_second =
      elapsed.count() > 0.0 ? static_cast<double>(total) / elapsed.count()
                            : 0.0;
  result.meta.mips = result.meta.cells_per_second *
                     static_cast<double>(instructions) / 1e6;
  return result;
}

}  // namespace icr::sim
