#include "src/sim/experiment.h"

#include "src/sim/campaign.h"

namespace icr::sim {

RunResult run_one(trace::App app, const core::Scheme& scheme,
                  const SimConfig& config, std::uint64_t instructions) {
  if (instructions == 0) instructions = default_instruction_count();
  Simulator simulator(config, scheme, trace::profile_for(app));
  return simulator.run(instructions);
}

std::vector<RunResult> run_all_apps(const core::Scheme& scheme,
                                    const SimConfig& config,
                                    std::uint64_t instructions) {
  auto matrix = run_matrix({{scheme.name, scheme, {}}}, trace::all_apps(),
                           config, instructions);
  return std::move(matrix.front());
}

std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<SchemeVariant>& variants,
    const std::vector<trace::App>& apps, const SimConfig& config,
    std::uint64_t instructions) {
  // One single-trial campaign without seed derivation: cells keep the
  // calibrated workload seeds and config.fault_seed, so every figure's
  // numbers match the old sequential loop bit for bit — the campaign
  // engine only adds parallelism.
  CampaignSpec spec;
  spec.variants = variants;
  spec.apps = apps;
  spec.config = config;
  spec.instructions = instructions;
  const CampaignResult campaign = CampaignRunner().run(spec);

  std::vector<std::vector<RunResult>> matrix(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<RunResult>& row = matrix[v];
    row.reserve(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
      row.push_back(campaign.at(v, a, 0, apps.size(), 1).result);
    }
  }
  return matrix;
}

std::vector<std::string> app_names(const std::vector<trace::App>& apps) {
  std::vector<std::string> names;
  names.reserve(apps.size());
  for (trace::App app : apps) names.emplace_back(trace::to_string(app));
  return names;
}

}  // namespace icr::sim
