#include "src/sim/experiment.h"

namespace icr::sim {

RunResult run_one(trace::App app, const core::Scheme& scheme,
                  const SimConfig& config, std::uint64_t instructions) {
  if (instructions == 0) instructions = default_instruction_count();
  Simulator simulator(config, scheme, trace::profile_for(app));
  return simulator.run(instructions);
}

std::vector<RunResult> run_all_apps(const core::Scheme& scheme,
                                    const SimConfig& config,
                                    std::uint64_t instructions) {
  std::vector<RunResult> results;
  for (trace::App app : trace::all_apps()) {
    results.push_back(run_one(app, scheme, config, instructions));
  }
  return results;
}

std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<SchemeVariant>& variants,
    const std::vector<trace::App>& apps, const SimConfig& config,
    std::uint64_t instructions) {
  std::vector<std::vector<RunResult>> matrix;
  matrix.reserve(variants.size());
  for (const SchemeVariant& variant : variants) {
    std::vector<RunResult> row;
    row.reserve(apps.size());
    for (trace::App app : apps) {
      row.push_back(run_one(app, variant.scheme, config, instructions));
      row.back().scheme = variant.label;
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

std::vector<std::string> app_names(const std::vector<trace::App>& apps) {
  std::vector<std::string> names;
  names.reserve(apps.size());
  for (trace::App app : apps) names.emplace_back(trace::to_string(app));
  return names;
}

}  // namespace icr::sim
