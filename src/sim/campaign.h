// Parallel experiment campaign engine.
//
// A campaign expands a (scheme variants x applications x trials) grid into
// independent simulation cells and runs them concurrently on a thread pool
// (src/util/thread_pool.h). Three properties make campaigns reproducible
// at any parallelism:
//
//   * Each cell owns its entire simulated system (workload, caches,
//     injector, pipeline) — cells share no mutable state.
//   * Each cell's RNG seed is derived *statelessly* with SplitMix64 from
//     (base_seed, variant_idx, app_idx, trial_idx), so seeds do not depend
//     on which thread ran the cell or in what order.
//   * Results land in pre-assigned slots of a flat vector in grid order.
//
// Consequently a campaign's per-cell metrics are bit-identical whether it
// runs on 1 thread or 64. Thread count resolves as: explicit argument >
// ICR_SIM_THREADS environment variable > hardware concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/observability.h"
#include "src/rel/rel_tracker.h"
#include "src/sim/experiment.h"
#include "src/sim/sampling.h"

namespace icr::sim {

// Stateless SplitMix64 derivation of one cell's seed. Deterministic in its
// four inputs; distinct cells of one campaign get distinct, decorrelated
// seeds (uniqueness is asserted for real grids in tests/campaign_test.cc).
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                             std::size_t variant_idx,
                                             std::size_t app_idx,
                                             std::size_t trial_idx) noexcept;

// A campaign driven by a recorded trace (ICRT v1 or v2) instead of the
// synthetic app axis. The trace's instruction budget splits into
// `shard_instructions`-wide intervals; each interval becomes one cell on
// the app axis (cold-start simulator, seek_to the interval's begin, run
// its width), so one large trace spreads across farm work units exactly
// like synthetic apps do. The interval decomposition lives in the spec —
// not in the executor — which is what keeps farm runs at any shard/worker
// count byte-identical to a single-process run.
struct TraceCampaignOptions {
  std::string path;
  // Instructions per interval cell; 0 = one cell covering the whole budget.
  std::uint64_t shard_instructions = 0;
  // Content provenance, filled from the file by resolve_trace_campaign().
  // The fingerprint folds into campaign_config_hash and is re-verified
  // when each cell opens the trace, so a farm worker replaying a modified
  // file fails loudly instead of producing silently different numbers.
  std::uint64_t fingerprint = 0;
  std::uint64_t records = 0;

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

// Degraded-geometry sweep axes (docs/GEOMETRY.md). When enabled(), the
// campaign grid gains geometry dimensions: expand_geometry_sweep() crosses
// every base scheme variant with (size × associativity × disabled-way
// count), producing one labelled variant per geometry cell whose per-variant
// SimConfig override carries the dL1 geometry and way-disable draw. The
// expansion is deterministic, so a farm worker reconstructing the spec from
// a manifest (base schemes + these axes) re-derives the identical grid and
// config hash.
struct GeometrySweep {
  std::vector<std::uint32_t> sizes;   // dL1 sizes in bytes; empty = spec dL1
  std::vector<std::uint32_t> assocs;  // associativities; empty = spec dL1
  std::vector<std::uint32_t> ways_disabled;  // k per set; empty = {0}
  mem::WayDisableConfig::Pattern pattern =
      mem::WayDisableConfig::Pattern::kFixed;
  std::uint64_t way_seed = 0x0DDB17;  // per-set draw seed (kRandom)
  // Base scheme labels recorded by expand_geometry_sweep(); what the farm
  // manifest serializes so spec_from_manifest() can re-expand.
  std::vector<std::string> base_schemes;

  [[nodiscard]] bool enabled() const noexcept {
    return !sizes.empty() || !assocs.empty() || !ways_disabled.empty();
  }
};

struct CampaignSpec {
  std::vector<SchemeVariant> variants;
  std::vector<trace::App> apps;
  TraceCampaignOptions trace;  // when enabled(), replaces the app axis
  // Geometry axes; absent (the default) leaves the variant grid, config
  // hash and export schemas exactly as before the degraded-geometry PR.
  GeometrySweep geometry;
  SimConfig config = SimConfig::table1();  // per-variant override wins
  std::uint64_t instructions = 0;          // 0 = default_instruction_count()
  std::uint32_t trials = 1;                // repeated cells per (variant, app)
  std::uint64_t base_seed = 0x1C9CA37ULL;  // campaign master seed

  // When true, every cell's workload seed and fault-injection seed are
  // replaced by streams derived from derive_cell_seed(). When false (the
  // default, used by the single-trial figure matrices) cells keep the
  // calibrated profile seeds and config.fault_seed, so legacy run_matrix
  // results are unchanged.
  bool derive_seeds = false;

  // Per-cell observability (interval telemetry / event tracing). Each cell
  // owns its own registry/sampler/trace — no cross-thread sharing — and the
  // options are deliberately excluded from campaign_config_hash: turning
  // telemetry on never changes the experiment (guarded by tier-1 test).
  obs::ObsOptions obs;

  // Per-cell analytical reliability tracking (src/rel). Owned per cell like
  // observability, and likewise excluded from campaign_config_hash: the
  // tracker observes the simulation without perturbing it (bit-identity
  // guarded by tier-1 test).
  rel::RelOptions rel;

  // Checkpointed warmup / interval sampling (src/sim/sampling.h). Unlike
  // obs/rel this DOES change the numbers (estimates, not full
  // measurements), so when enabled() it folds into campaign_config_hash
  // and every cell carries a SampleProvenance. Disabled sampling leaves
  // hash, results and exports byte-identical to a spec without the field.
  // Random-mode placement derives a per-cell stream from
  // (base_seed ^ mix64(sampling.seed), cell coordinates), so sampled
  // campaigns stay bit-identical at any thread count.
  SamplingOptions sampling;

  // Size of the second grid axis: trace interval shards when a trace is
  // attached (requires resolve_trace_campaign() first), synthetic apps
  // otherwise.
  [[nodiscard]] std::size_t app_axis() const;

  [[nodiscard]] std::size_t cell_count() const {
    return variants.size() * app_axis() * trials;
  }
};

// Probes spec.trace.path and fills fingerprint/records (no-op when no
// trace is attached). Call once before hashing, manifesting, or running a
// trace campaign; throws std::runtime_error on a missing/corrupt trace.
void resolve_trace_campaign(CampaignSpec& spec);

// Crosses spec.variants with the geometry axes (no-op when
// spec.geometry.enabled() is false). Each base variant × (size, assoc, k)
// cell becomes one variant labelled "<base>@<size>/<assoc>w-d<k>" whose
// config override carries the geometry and way-disable draw; the base
// labels are recorded in spec.geometry.base_schemes. Idempotent per spec
// (expanding twice throws). Call once, before hashing or manifesting;
// throws std::invalid_argument on a malformed geometry (non-power-of-two,
// k >= associativity, ...).
void expand_geometry_sweep(CampaignSpec& spec);

// Deterministic geometry cell label suffix: "@<size>/<assoc>w-d<k>" with
// the size printed as "16K"-style when divisible by 1024. Comma-free, so
// expanded variant labels stay CSV-safe.
[[nodiscard]] std::string geometry_label_suffix(std::uint32_t size_bytes,
                                                std::uint32_t assoc,
                                                std::uint32_t ways_disabled);

// The per-campaign instruction budget: spec.instructions when set, else
// the whole trace (trace campaigns) or default_instruction_count().
[[nodiscard]] std::uint64_t resolved_instruction_count(
    const CampaignSpec& spec);

// One interval of a trace campaign's budget. Replay starts at trace
// record `begin % records` and runs `instructions` instructions.
struct TraceShard {
  std::uint64_t begin = 0;
  std::uint64_t instructions = 0;
};

[[nodiscard]] std::size_t trace_shard_count(const CampaignSpec& spec);
[[nodiscard]] TraceShard trace_shard(const CampaignSpec& spec,
                                     std::size_t shard_idx);
// Deterministic, comma-free cell label: "<basename>@<begin>+<width>" —
// what RunResult::app carries in place of a synthetic app name.
[[nodiscard]] std::string trace_shard_label(const CampaignSpec& spec,
                                            std::size_t shard_idx);

// Grid coordinates of one cell plus the seed it ran with.
struct CampaignCell {
  std::uint32_t variant_idx = 0;
  std::uint32_t app_idx = 0;
  std::uint32_t trial_idx = 0;
  std::uint64_t seed = 0;  // derived seed (0 when derive_seeds is false)
};

// Per-cell geometry provenance: the resolved dL1 geometry the cell ran
// with. `present` is true only for cells of a geometry-swept campaign —
// exports add geometry columns exactly when a sweep was requested, so
// legacy export schemas are byte-stable (mirrors SampleProvenance).
struct GeometryProvenance {
  bool present = false;
  std::uint32_t dl1_size_bytes = 0;
  std::uint32_t dl1_assoc = 0;
  std::uint32_t ways_disabled = 0;  // per-set disabled-way count
};

struct CellResult {
  CampaignCell cell;
  RunResult result;
  // How the result was obtained; sampling.sampled is false for full runs.
  SampleProvenance sampling;
  // Resolved dL1 geometry; present only in geometry-swept campaigns.
  GeometryProvenance geometry;
  // Telemetry extract; null when the spec's ObsOptions asked for nothing.
  std::unique_ptr<obs::CellObservability> obs;
  // Analytical reliability report; null unless the spec enabled rel.
  std::unique_ptr<rel::RelReport> rel;
};

// Runs one cell of the expanded grid, exactly as CampaignRunner would:
// same seed derivation, same sampling placement, same obs/rel wiring.
// `instructions` must be the resolved budget (spec.instructions, or
// default_instruction_count() when that is 0). Public so out-of-process
// executors — the campaign farm's workers (src/sim/farm.h) — produce
// bit-identical cells to an in-process run; which process runs a cell can
// never change its numbers.
[[nodiscard]] CellResult run_campaign_cell(const CampaignSpec& spec,
                                           std::size_t variant_idx,
                                           std::size_t app_idx,
                                           std::size_t trial_idx,
                                           std::uint64_t instructions);

// Campaign-level metadata exported alongside the cells (results_io.h).
struct CampaignMeta {
  std::uint64_t base_seed = 0;
  std::uint64_t config_hash = 0;  // fingerprint of the expanded spec
  std::uint64_t instructions = 0;
  std::uint32_t trials = 1;
  unsigned threads = 1;
  SamplingOptions sampling;  // copy of the spec's sampling request
  bool geometry = false;     // geometry sweep — exports carry geometry columns
  std::uint64_t completed_cells = 0;
  double wall_seconds = 0.0;
  double cells_per_second = 0.0;
  // Simulated MIPS: cells * instructions-per-cell / wall seconds / 1e6 —
  // the throughput number the ROADMAP's "fast as the hardware allows"
  // north star is judged by.
  double mips = 0.0;
};

struct CampaignResult {
  CampaignMeta meta;
  // Grid order: variant-major, then app, then trial — independent of
  // scheduling. cells.size() == spec.cell_count().
  std::vector<CellResult> cells;

  [[nodiscard]] const CellResult& at(std::size_t variant_idx,
                                     std::size_t app_idx,
                                     std::size_t trial_idx, std::size_t apps,
                                     std::size_t trials) const {
    return cells[(variant_idx * apps + app_idx) * trials + trial_idx];
  }
};

// Thread-count resolution: `requested` if nonzero, else ICR_SIM_THREADS if
// set to a positive integer, else hardware concurrency (>= 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested = 0);

// Order-insensitive-free fingerprint of everything that determines a
// campaign's numbers: variants (label + scheme knobs), apps, instruction
// count, trials, base seed, seed mode, and fault configuration. Two
// campaigns with equal hashes ran the same experiment.
[[nodiscard]] std::uint64_t campaign_config_hash(const CampaignSpec& spec);

// Live progress reporting for long campaigns. Printing happens on the
// worker that finished a cell, under a mutex, at most once per
// `min_interval_seconds` — short campaigns therefore stay silent.
struct ProgressOptions {
  bool enabled = false;
  double min_interval_seconds = 1.0;
  // Optional live export: when set, the runner stores the completed-cell
  // count here after every cell, independent of `enabled` (printing stays
  // gated). The HTTP status server (src/sim/serve.h) reads it; the pointer
  // must stay valid for the duration of run().
  std::atomic<std::uint64_t>* live_cells_done = nullptr;
};

class CampaignRunner {
 public:
  // threads == 0 defers to resolve_thread_count().
  explicit CampaignRunner(unsigned threads = 0)
      : threads_(resolve_thread_count(threads)) {
    progress_.enabled = default_progress_enabled();
  }

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  CampaignRunner& with_progress(const ProgressOptions& options) {
    progress_ = options;
    return *this;
  }
  [[nodiscard]] const ProgressOptions& progress() const noexcept {
    return progress_;
  }

  // Process-wide default for newly constructed runners. The bench binaries
  // flip this from bench::init() (--quiet turns it back off) so every
  // campaign they run reports progress without plumbing options through
  // each figure.
  static void set_default_progress_enabled(bool enabled) noexcept;
  [[nodiscard]] static bool default_progress_enabled() noexcept;

  // Runs every cell of the grid (possibly concurrently) and returns the
  // results in deterministic grid order.
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec) const;

 private:
  unsigned threads_;
  ProgressOptions progress_;
};

}  // namespace icr::sim
