// HTTP status serving for campaigns and long simulations: glue between the
// telemetry substrate (src/sim/farm_telemetry, src/sim/campaign progress,
// icr_sim run state) and the embedded server (src/obs/http_server).
//
// One StatusSource abstraction, three implementations:
//
//   * SpoolStatusSource    — re-collects farm status from the spool on every
//     request. Read-only over the files by construction, so serving can
//     never perturb aggregation (exports stay byte-identical with --serve
//     on; tier-1 guarded).
//   * CampaignStatusSource — in-process `run_campaign` runs: reads the live
//     completed-cell counter the runner publishes after every cell.
//   * SimStatusSource      — `icr_sim --serve`: the simulation thread
//     pushes snapshots between run chunks; the HTTP threads only read the
//     latest snapshot under a mutex.
//
// start_status_server() wires any source to the five endpoints
// (docs/SERVING.md): GET / (dashboard), /healthz, /status (the --status-json
// NDJSON, schema kStatusSchemaVersion), /metrics (Prometheus text 0.0.4)
// and /events (Server-Sent Events over the merged (time, worker, seq)
// event log; resume via Last-Event-ID or ?after=N, one-shot dump via
// ?once=1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/http_server.h"
#include "src/obs/prof.h"
#include "src/sim/farm_telemetry.h"

namespace icr::sim::farm {

class StatusSource {
 public:
  virtual ~StatusSource() = default;
  // NDJSON, same shape as --status-json (one summary line + detail lines).
  [[nodiscard]] virtual std::string status_ndjson() = 0;
  // Prometheus text exposition 0.0.4.
  [[nodiscard]] virtual std::string metrics_text() = 0;
  // Merged event log as NDJSON lines (no trailing newline). The SSE event
  // id is the line's index in this stream; the merge order is a pure
  // function of the spool files so ids are stable across re-reads once a
  // worker's log has been written. Empty for sources without event logs.
  [[nodiscard]] virtual std::vector<std::string> event_lines() = 0;
  // True once no further updates will come (farm drained / run finished):
  // /events streams close after their final batch.
  [[nodiscard]] virtual bool finished() = 0;
};

// Farm spool: every request re-reads the files (heartbeats, events,
// claims), exactly like `--farm-status` would.
class SpoolStatusSource : public StatusSource {
 public:
  SpoolStatusSource(std::string spool, Manifest manifest,
                    StalenessPolicy staleness = {});
  std::string status_ndjson() override;
  std::string metrics_text() override;
  std::vector<std::string> event_lines() override;
  bool finished() override;

 private:
  [[nodiscard]] FarmStatus collect() const;
  std::string spool_;
  Manifest manifest_;
  StalenessPolicy staleness_;
};

// In-process campaign: progress is the runner's live completed-cell
// counter (ProgressOptions::live_cells_done points at cells_done()).
class CampaignStatusSource : public StatusSource {
 public:
  CampaignStatusSource(std::uint64_t total_cells,
                       std::uint64_t instructions_per_cell);
  [[nodiscard]] std::atomic<std::uint64_t>& cells_done() noexcept {
    return cells_done_;
  }
  void finish() { finished_.store(true); }
  std::string status_ndjson() override;
  std::string metrics_text() override;
  std::vector<std::string> event_lines() override { return {}; }
  bool finished() override { return finished_.load(); }

 private:
  std::uint64_t total_cells_;
  std::uint64_t instructions_per_cell_;
  double start_monotonic_seconds_;
  std::atomic<std::uint64_t> cells_done_{0};
  std::atomic<bool> finished_{false};
};

// Single simulation (icr_sim --serve): the sim thread calls update()
// between run chunks; HTTP threads read the latest snapshot.
class SimStatusSource : public StatusSource {
 public:
  SimStatusSource(std::string scheme, std::string app,
                  std::uint64_t total_instructions);
  // Counter names/values are a registry snapshot (may be empty); zones a
  // prof::snapshot_zones() result (empty without --prof).
  void update(std::uint64_t instructions_done,
              std::vector<std::pair<std::string, std::uint64_t>> counters = {},
              std::vector<obs::prof::ZoneNode> zones = {});
  void finish();
  std::string status_ndjson() override;
  std::string metrics_text() override;
  std::vector<std::string> event_lines() override { return {}; }
  bool finished() override;

 private:
  std::string scheme_;
  std::string app_;
  std::uint64_t total_instructions_;
  double start_monotonic_seconds_;
  mutable std::mutex mutex_;
  std::uint64_t instructions_done_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<obs::prof::ZoneNode> zones_;
  bool finished_ = false;
};

struct ServeOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() has the real one
  // /events idle re-poll cadence while waiting for new events.
  double events_poll_seconds = 0.5;
};

// "PORT" or "ADDR:PORT" (e.g. "8080", "0.0.0.0:8080") into `options`;
// throws std::runtime_error on malformed input or a port outside 1..65535.
void parse_serve_spec(const std::string& spec, ServeOptions* options);

// Registers the five endpoints on a fresh server and starts it. The source
// must outlive the returned server; stop() (or destruction) joins every
// connection. Throws std::runtime_error when the bind fails.
[[nodiscard]] std::unique_ptr<obs::http::Server> start_status_server(
    StatusSource& source, const ServeOptions& options);

}  // namespace icr::sim::farm
