// Experiment runner shared by every bench binary: runs (app x scheme)
// matrices with the Table-1 configuration and caches nothing — each bench
// is a standalone reproduction of one paper figure/table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/scheme.h"
#include "src/sim/config.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/workloads.h"

namespace icr::sim {

// Runs `scheme` on `app` for `instructions` (0 = default_instruction_count).
[[nodiscard]] RunResult run_one(trace::App app, const core::Scheme& scheme,
                                const SimConfig& config = SimConfig::table1(),
                                std::uint64_t instructions = 0);

// Runs `scheme` on every paper application.
[[nodiscard]] std::vector<RunResult> run_all_apps(
    const core::Scheme& scheme, const SimConfig& config = SimConfig::table1(),
    std::uint64_t instructions = 0);

// One column of a figure: a labelled scheme (+config) variant.
// `config`, when set, overrides the campaign/matrix-wide SimConfig for this
// variant only — how fault-model and error-rate sweeps become ordinary
// campaign cells (see bench/fig14_error_injection.cc).
struct SchemeVariant {
  SchemeVariant() = default;
  SchemeVariant(std::string label_in, core::Scheme scheme_in,
                std::optional<SimConfig> config_in = std::nullopt)
      : label(std::move(label_in)),
        scheme(std::move(scheme_in)),
        config(std::move(config_in)) {}

  std::string label;
  core::Scheme scheme;
  std::optional<SimConfig> config;
};

// Runs every variant over every app; result[v][a] aligns with inputs.
[[nodiscard]] std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<SchemeVariant>& variants,
    const std::vector<trace::App>& apps,
    const SimConfig& config = SimConfig::table1(),
    std::uint64_t instructions = 0);

// Application display names in paper order.
[[nodiscard]] std::vector<std::string> app_names(
    const std::vector<trace::App>& apps);

}  // namespace icr::sim
