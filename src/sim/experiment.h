// Experiment runner shared by every bench binary: runs (app x scheme)
// matrices with the Table-1 configuration and caches nothing — each bench
// is a standalone reproduction of one paper figure/table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/scheme.h"
#include "src/sim/config.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/workloads.h"

namespace icr::sim {

// Runs `scheme` on `app` for `instructions` (0 = default_instruction_count).
[[nodiscard]] RunResult run_one(trace::App app, const core::Scheme& scheme,
                                const SimConfig& config = SimConfig::table1(),
                                std::uint64_t instructions = 0);

// Runs `scheme` on every paper application.
[[nodiscard]] std::vector<RunResult> run_all_apps(
    const core::Scheme& scheme, const SimConfig& config = SimConfig::table1(),
    std::uint64_t instructions = 0);

// One column of a figure: a labelled scheme (+config) variant.
struct SchemeVariant {
  std::string label;
  core::Scheme scheme;
};

// Runs every variant over every app; result[v][a] aligns with inputs.
[[nodiscard]] std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<SchemeVariant>& variants,
    const std::vector<trace::App>& apps,
    const SimConfig& config = SimConfig::table1(),
    std::uint64_t instructions = 0);

// Application display names in paper order.
[[nodiscard]] std::vector<std::string> app_names(
    const std::vector<trace::App>& apps);

}  // namespace icr::sim
