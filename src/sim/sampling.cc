#include "src/sim/sampling.h"

#include <algorithm>
#include <utility>

#include "src/obs/prof.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace icr::sim {
namespace {

// Warmup clamped so at least one kMinWindowWidth window (or the whole
// budget, if smaller) stays measurable.
std::uint64_t clamped_warmup(std::uint64_t budget,
                             const SamplingOptions& options) {
  const std::uint64_t min_measure = std::min(budget, kMinWindowWidth);
  return std::min(options.warmup_instructions, budget - min_measure);
}

// Midpoint boundaries: window j represents [b_j, b_j+1) where b_0 = 0,
// interior boundaries bisect the gaps, b_k = budget. The spans therefore
// partition [0, budget) exactly, which is what makes the weighted
// reconstruction of a piecewise-constant metric exact and the single
// full-width window carry weight exactly 1.0.
void assign_spans(std::vector<SampleWindow>& windows, std::uint64_t budget) {
  std::uint64_t boundary = 0;
  for (std::size_t j = 0; j < windows.size(); ++j) {
    const std::uint64_t next = j + 1 < windows.size()
                                   ? (windows[j].end + windows[j + 1].begin) / 2
                                   : budget;
    windows[j].span = next - boundary;
    boundary = next;
  }
}

}  // namespace

const char* to_string(SampleMode mode) noexcept {
  switch (mode) {
    case SampleMode::kSystematic:
      return "systematic";
    case SampleMode::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<SampleWindow> plan_windows(std::uint64_t budget,
                                       const SamplingOptions& options) {
  std::vector<SampleWindow> windows;
  if (budget == 0) return windows;
  const std::uint64_t begin = clamped_warmup(budget, options);
  const std::uint64_t region = budget - begin;

  if (options.windows == 0) {
    // Warmup-only: one window over everything after the checkpoint.
    windows.push_back({begin, budget, budget});
    return windows;
  }

  std::uint64_t width = options.window_width;
  if (width == 0) width = region / (10 * std::uint64_t{options.windows});
  width = std::max(width, kMinWindowWidth);
  width = std::min(width, region);
  // Prefer dropping windows over shrinking them below the requested width.
  std::uint64_t count = options.windows;
  if (count > region / width) count = std::max<std::uint64_t>(1, region / width);

  Rng rng(options.seed);
  const std::uint64_t slack = region - count * width;
  if (options.mode == SampleMode::kRandom) {
    // Sorted cuts in [0, slack] shifted by j*width: sorted, non-overlapping
    // and in-budget by construction.
    std::vector<std::uint64_t> cuts(count);
    for (auto& c : cuts) c = rng.next_below(slack + 1);
    std::sort(cuts.begin(), cuts.end());
    for (std::uint64_t j = 0; j < count; ++j) {
      const std::uint64_t start = begin + cuts[j] + j * width;
      windows.push_back({start, start + width, 0});
    }
  } else {
    // Even (Bresenham) starts: stride floor(region/count) >= width, so
    // windows never overlap and the last one ends inside the budget.
    for (std::uint64_t j = 0; j < count; ++j) {
      const std::uint64_t start = begin + (j * region) / count;
      windows.push_back({start, start + width, 0});
    }
  }
  assign_spans(windows, budget);
  return windows;
}

SamplingController::SamplingController(Simulator& simulator,
                                       const SamplingOptions& options)
    : options_(options), energy_(simulator.config().energy) {
  hooks_.run = [&simulator](std::uint64_t n) { (void)simulator.run(n); };
  hooks_.fast_forward = [&simulator](std::uint64_t n) {
    simulator.fast_forward(n);
  };
  hooks_.result = [&simulator] { return simulator.result(); };
}

SamplingController::SamplingController(Hooks hooks,
                                       const SamplingOptions& options,
                                       const energy::EnergyParams& energy)
    : hooks_(std::move(hooks)), options_(options), energy_(energy) {}

SampledRunResult SamplingController::run(std::uint64_t budget) {
  ICR_PROF_ZONE("SamplingController::run");
  SampledRunResult out;
  out.provenance.budget = budget;
  if (!options_.enabled() || budget == 0) {
    // Passthrough: exactly what the caller would have done without a
    // controller, result untouched (bit-identity guarded by tier-1 test).
    hooks_.run(budget);
    out.estimate = hooks_.result();
    out.provenance.measured_instructions = budget;
    return out;
  }

  // Positions below are relative to where this simulation already is, so a
  // controller can drive a simulator that has run before.
  const std::uint64_t origin = hooks_.result().instructions;
  out.windows = plan_windows(budget, options_);
  out.provenance.sampled = true;
  out.provenance.warmup_instructions = clamped_warmup(budget, options_);

  std::vector<RunResult> deltas;
  std::vector<double> weights;
  for (const SampleWindow& w : out.windows) {
    std::uint64_t pos = hooks_.result().instructions - origin;
    if (pos < w.begin) hooks_.fast_forward(w.begin - pos);
    const RunResult before = hooks_.result();
    pos = before.instructions - origin;
    if (pos < w.end) hooks_.run(w.end - pos);
    const RunResult after = hooks_.result();
    // The detailed->functional drain can overshoot a boundary; a window it
    // swallowed whole (possible only below kMinWindowWidth) measures
    // nothing and must not contribute a zero delta.
    if (after.instructions == before.instructions) continue;
    deltas.push_back(subtract_counters(after, before));
    weights.push_back(static_cast<double>(w.span) /
                      static_cast<double>(w.width()));
    out.provenance.measured_instructions +=
        after.instructions - before.instructions;
    ++out.provenance.windows;
  }
  // Cover the tail so decay/fault/scrub state reflects the whole budget
  // and back-to-back controller runs resume from the right position.
  const std::uint64_t pos = hooks_.result().instructions - origin;
  if (pos < budget) hooks_.fast_forward(budget - pos);

  ICR_CHECK(!deltas.empty());  // planner guarantees measurable windows
  out.estimate = reconstruct_weighted(deltas, weights);
  // Counter reconstruction scales energy_events; re-price them so the
  // energy breakdown matches the estimated event counts.
  out.estimate.energy =
      energy::EnergyModel(energy_).evaluate(out.estimate.energy_events);
  return out;
}

}  // namespace icr::sim
