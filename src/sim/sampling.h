// Checkpointed warmup + SimPoint-style interval sampling.
//
// Every campaign cell used to simulate its full instruction budget in the
// detailed out-of-order model, from a cold cache. This controller makes
// long budgets affordable by simulating only representative chunks:
//
//   * Checkpointed warmup — the first W instructions run in the cheap
//     functional mode (Pipeline::fast_forward): dL1/L2/L1I contents, decay
//     counters, branch predictor and fault state all advance, but no OoO
//     cycles are modelled and nothing is measured. Measurement starts from
//     a warm checkpoint instead of a cold cache.
//   * Interval sampling — K measurement windows at deterministic offsets
//     inside the post-warmup region (systematic placement, or seeded-random
//     placement from the campaign's SplitMix64 stream). Windows run in the
//     detailed model; the gaps between them fast-forward functionally.
//
// Measurement is snapshot-and-subtract: a full RunResult snapshot brackets
// each window and the counter-level delta (metrics.h visit order) is the
// window's contribution. Whole-run estimates are reconstructed by weighting
// each window delta by the share of the budget it represents — window j
// stands for the region from the midpoint before it to the midpoint after
// it, so the spans partition [0, budget) exactly and a piecewise-constant
// metric is reconstructed exactly (property-tested). One window covering
// the whole budget has weight exactly 1.0, which makes full-coverage
// sampling bit-identical to an unsampled run (golden-tested).
//
// Everything is deterministic in (options, budget): window placement is
// pure arithmetic plus an explicit seed, and the functional clock advances
// at the CPI measured so far in exact fixed-point. Sampled campaigns are
// therefore bit-identical at any thread count, like unsampled ones.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/energy/energy_model.h"
#include "src/sim/metrics.h"

namespace icr::sim {

class Simulator;

enum class SampleMode : std::uint8_t {
  kSystematic,  // evenly spaced windows across the measured region
  kRandom,      // seeded-random placement (sorted, non-overlapping)
};

[[nodiscard]] const char* to_string(SampleMode mode) noexcept;

struct SamplingOptions {
  // Instructions fast-forwarded functionally before measurement begins.
  std::uint64_t warmup_instructions = 0;
  // Measurement windows. 0 = no interval sampling: everything after warmup
  // is measured in one window (warmup-only mode).
  std::uint32_t windows = 0;
  // Instructions per window. 0 = auto: a tenth of the measured region
  // split across the windows, i.e. (budget - warmup) / (10 * windows).
  std::uint64_t window_width = 0;
  SampleMode mode = SampleMode::kSystematic;
  // Placement stream for kRandom; campaigns derive a per-cell seed from
  // this and the cell coordinates (see campaign.cc).
  std::uint64_t seed = 0x5A3D11ULL;

  [[nodiscard]] bool enabled() const noexcept {
    return warmup_instructions > 0 || windows > 0;
  }
};

// Half-open measurement window [begin, end) in absolute committed
// instructions, plus the number of budget instructions it represents in
// the reconstruction (the spans of a plan partition [0, budget)).
struct SampleWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t span = 0;

  [[nodiscard]] std::uint64_t width() const noexcept { return end - begin; }
};

// Narrowest window the planner will emit. The detailed->functional drain
// can overshoot a window boundary by the in-flight capacity (~33
// instructions for the Table-1 core); a wider floor keeps every window
// measurable.
inline constexpr std::uint64_t kMinWindowWidth = 64;

// Deterministic window plan for `budget` instructions: sorted,
// non-overlapping, inside [min(warmup, budget-1), budget), every window at
// least kMinWindowWidth wide (window count is reduced before width when the
// region cannot fit the request), spans partitioning [0, budget).
// Empty only when budget == 0.
[[nodiscard]] std::vector<SampleWindow> plan_windows(
    std::uint64_t budget, const SamplingOptions& options);

// What a sampled run actually did — exported as provenance next to the
// estimated metrics (results_io.cc) so sampled rows are never mistaken for
// full measurements.
struct SampleProvenance {
  bool sampled = false;
  std::uint64_t budget = 0;                 // instructions covered
  std::uint64_t warmup_instructions = 0;    // functional warmup
  std::uint32_t windows = 0;                // measurement windows executed
  std::uint64_t measured_instructions = 0;  // detailed instructions

  // Fraction of the budget simulated in the detailed model.
  [[nodiscard]] double coverage() const noexcept {
    return budget == 0 ? 1.0
                       : static_cast<double>(measured_instructions) /
                             static_cast<double>(budget);
  }
};

struct SampledRunResult {
  RunResult estimate;  // whole-run reconstruction (exact when unsampled)
  SampleProvenance provenance;
  std::vector<SampleWindow> windows;  // the executed plan
};

// Drives one simulation through warmup, windows and gaps. Constructed
// either directly over a Simulator or over hooks, so the trace-replay path
// (tools/icr_sim.cc), which assembles its own pipeline, samples through
// the same controller.
class SamplingController {
 public:
  struct Hooks {
    // Runs `n` more instructions in the detailed model.
    std::function<void(std::uint64_t)> run;
    // Advances `n` instructions functionally (Pipeline::fast_forward).
    std::function<void(std::uint64_t)> fast_forward;
    // Cumulative RunResult snapshot; result().instructions must track the
    // committed-instruction position the two advance hooks move.
    std::function<RunResult()> result;
  };

  SamplingController(Simulator& simulator, const SamplingOptions& options);
  SamplingController(Hooks hooks, const SamplingOptions& options,
                     const energy::EnergyParams& energy);

  // Executes the plan over `budget` instructions and reconstructs the
  // whole-run estimate. With options.enabled() == false this is a plain
  // passthrough: one detailed run of the full budget, result returned
  // untouched (bit-identical to not using the controller at all).
  [[nodiscard]] SampledRunResult run(std::uint64_t budget);

 private:
  Hooks hooks_;
  SamplingOptions options_;
  energy::EnergyParams energy_;
};

}  // namespace icr::sim
