// The consolidated result of one simulation run: every metric the paper
// reports (§4.1) plus the engineering counters behind them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/rcache.h"
#include "src/core/icr_cache.h"
#include "src/cpu/branch_predictor.h"
#include "src/cpu/pipeline.h"
#include "src/energy/energy_model.h"
#include "src/fault/fault_injector.h"
#include "src/mem/set_assoc_cache.h"

namespace icr::sim {

struct RunResult {
  std::string scheme;
  std::string app;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;  // paper metric: Execution Cycles

  core::IcrStats dl1;
  mem::CacheStats l1i;
  mem::CacheStats l2;
  cpu::PipelineStats pipeline;
  cpu::BranchPredictorStats branch;
  fault::FaultStats faults;
  baselines::RCacheStats rcache;  // all-zero unless an R-Cache is attached

  energy::EnergyEvents energy_events;
  energy::EnergyBreakdown energy;  // paper metric: Energy (dL1 + L2)

  [[nodiscard]] double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

// cycles(result) / cycles(baseline) — the paper's normalized execution
// cycles (Fig. 9, 11, 12, 15-17).
[[nodiscard]] double normalized_cycles(const RunResult& result,
                                       const RunResult& baseline) noexcept;

// energy(result) / energy(baseline).
[[nodiscard]] double normalized_energy(const RunResult& result,
                                       const RunResult& baseline) noexcept;

// Arithmetic mean of a metric over per-app values.
[[nodiscard]] double mean(const std::vector<double>& values) noexcept;

// ---------------------------------------------------------------------------
// Counter-level arithmetic for snapshot-and-subtract sampling
// (src/sim/sampling.h). Every cumulative uint64 counter of a RunResult —
// including the nested dl1/l1i/l2/pipeline/branch/fault/rcache/energy-event
// stats — is visited in one fixed order, so window deltas and weighted
// whole-run reconstructions stay exact field for field.
// ---------------------------------------------------------------------------

// All counters of `r`, flattened in the canonical visit order.
[[nodiscard]] std::vector<std::uint64_t> counter_vector(const RunResult& r);

// `end - begin` over every counter (clamped at zero for safety; counters
// are monotone over a run). Strings are copied from `end`; the energy
// breakdown is NOT recomputed — callers holding the EnergyParams re-price
// the subtracted energy_events (see sampling.cc).
[[nodiscard]] RunResult subtract_counters(const RunResult& end,
                                          const RunResult& begin);

// Whole-run reconstruction from weighted window deltas:
//   counter[i] = round(sum_j weights[j] * counter_vector(deltas[j])[i])
// With a single delta at weight 1.0 this is the identity, which is what
// makes full-coverage sampling bit-identical to an unsampled run. Strings
// are copied from deltas.front(); requires deltas.size() == weights.size()
// and at least one delta.
[[nodiscard]] RunResult reconstruct_weighted(
    const std::vector<RunResult>& deltas, const std::vector<double>& weights);

}  // namespace icr::sim
