// Fleet telemetry for the campaign farm: the spool directory itself is the
// observability substrate.
//
// PR 6 (src/sim/farm.h) made the spool the *work* substrate — any process
// can claim, run and publish units through files alone. This layer makes it
// the *status* substrate too: any process — the coordinator, an external
// fleet manager, or a human running `run_campaign --farm-status` after a
// crash — can reconstruct fleet state purely from files, with no IPC and no
// surviving coordinator. Three file families, all outside the unit/claim
// directories the aggregator reads, so telemetry can never perturb the
// byte-identical export guarantee (guarded by tier-1 test):
//
//   spool/
//     hb/worker-<id>.json         # latest heartbeat, atomic-rename publish
//     events/worker-<id>.ndjson   # append-only lifecycle event stream
//     prof/worker-<id>.json       # optional per-worker Chrome trace
//
//   * Heartbeats are whole-state snapshots (progress, current unit/cell,
//     wall/MIPS, rusage, merged host-profiler zone totals) republished via
//     util::fs::atomic_write_text_file — a reader sees the previous or the
//     next heartbeat, never a torn one. Writes are amortized: forced at
//     unit boundaries, time-based cadence only between cells, nothing on
//     the per-instruction hot path.
//   * Event logs are per-worker NDJSON streams of typed lifecycle events
//     (claim, publish, claim-conflict, stale-clear, resume-sweep, exit)
//     with per-worker monotonic sequence numbers; one write(2) per line, so
//     a SIGKILL can truncate at most the final line (readers skip partial
//     lines). read_farm_events() merges all workers' streams
//     deterministically — the merge is a pure function of file contents.
//   * farm_status is the read side: census + heartbeat staleness
//     classification (running / straggler / dead against configurable
//     thresholds) + per-unit latency histogram (obs::Log2Histogram over
//     claim→publish wall time) + fleet throughput/ETA
//     (obs::estimate_throughput). Rendered as a table, NDJSON for
//     scripting, or merged with per-worker --prof captures into one
//     Perfetto-loadable fleet timeline (merge_fleet_trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/prof.h"
#include "src/obs/stat_registry.h"
#include "src/obs/throughput.h"
#include "src/sim/farm.h"

namespace icr::sim::farm {

// Bumped when the heartbeat/event schema changes incompatibly.
inline constexpr int kTelemetryFormatVersion = 1;

// Monotonic version of the --status-json / GET /status NDJSON records
// (docs/CAMPAIGN.md "Status schema"). Every record carries it as "schema"
// so downstream parsers can detect format changes; records without the
// field are implicitly version 1 (the pre-schema producer).
//   1 — PR 7: farm + worker records, no schema field.
//   2 — PR 9: explicit "schema" field on every record.
inline constexpr int kStatusSchemaVersion = 2;

// Worker ids become file names; anything outside [A-Za-z0-9._-] maps to '_'
// (empty ids become "worker").
[[nodiscard]] std::string sanitize_worker_id(const std::string& id);

// Telemetry paths inside a spool.
[[nodiscard]] std::string heartbeat_dir(const std::string& spool);
[[nodiscard]] std::string event_log_dir(const std::string& spool);
[[nodiscard]] std::string worker_trace_dir(const std::string& spool);
[[nodiscard]] std::string heartbeat_path(const std::string& spool,
                                         const std::string& worker_id);
[[nodiscard]] std::string event_log_path(const std::string& spool,
                                         const std::string& worker_id);
[[nodiscard]] std::string worker_trace_path(const std::string& spool,
                                            const std::string& worker_id);

// getrusage(RUSAGE_SELF) extract carried in heartbeats.
struct RusageSnapshot {
  std::uint64_t maxrss_kb = 0;
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
};
[[nodiscard]] RusageSnapshot capture_rusage();

// One whole-state worker snapshot. Every publication replaces the previous
// file atomically; `seq` increases by one per publication so readers can
// order observations without trusting the wall clock.
struct WorkerHeartbeat {
  int version = kTelemetryFormatVersion;
  std::string worker_id;
  std::int64_t pid = 0;
  std::uint64_t seq = 0;
  double time_unix_seconds = 0.0;  // wall clock at publication
  double uptime_seconds = 0.0;     // since worker start (steady clock)
  std::uint32_t units_done = 0;
  std::uint64_t cells_done = 0;
  std::int64_t current_unit = -1;   // -1 = between units
  std::int64_t current_cell = -1;   // grid cell index in flight, -1 = none
  std::uint64_t instructions_done = 0;
  double mips = 0.0;  // simulated MIPS over the worker's lifetime
  bool exited = false;
  RusageSnapshot rusage;
  // Merged host-profiler zone totals (obs::prof::snapshot_zones); empty
  // when the worker runs without --prof.
  std::vector<obs::prof::ZoneNode> prof_zones;

  [[nodiscard]] std::string to_json() const;
  // Throws std::runtime_error on malformed input or version mismatch.
  [[nodiscard]] static WorkerHeartbeat parse(const std::string& text);
};

// Typed lifecycle events. Workers emit the first five; the coordinator
// emits stale-clear / resume-sweep under the id "coordinator".
enum class FarmEventType {
  kWorkerStart,
  kClaim,
  kClaimConflict,
  kPublish,
  kStaleClear,
  kResumeSweep,
  kExit,
};
[[nodiscard]] const char* to_string(FarmEventType type) noexcept;
// Throws std::runtime_error on an unknown name.
[[nodiscard]] FarmEventType event_type_by_name(const std::string& name);

struct FarmEvent {
  std::string worker_id;
  std::uint64_t seq = 0;  // per-worker monotonic
  double time_unix_seconds = 0.0;
  FarmEventType type = FarmEventType::kWorkerStart;
  std::int64_t unit = -1;            // -1 = not unit-scoped
  std::uint64_t cells = 0;           // cells in the unit (publish) or count
  double duration_seconds = 0.0;     // claim→publish wall (publish)
  std::string detail;

  [[nodiscard]] std::string to_ndjson_line() const;  // includes the '\n'
  // Throws std::runtime_error on malformed input or version mismatch.
  [[nodiscard]] static FarmEvent parse(const std::string& line);
};

// Append-only per-worker event stream. On construction the writer resumes
// the sequence from an existing log (a resumed coordinator keeps its
// numbers monotonic); each append is one write(2) of one NDJSON line.
class EventLog {
 public:
  EventLog(const std::string& spool, const std::string& worker_id);

  void append(FarmEventType type, std::int64_t unit = -1,
              std::uint64_t cells = 0, double duration_seconds = 0.0,
              const std::string& detail = {});

  [[nodiscard]] const std::string& worker_id() const noexcept {
    return worker_id_;
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

 private:
  std::string path_;
  std::string worker_id_;
  std::uint64_t next_seq_ = 0;
};

// All workers' event streams merged deterministically: ordered by
// (timestamp, worker id, sequence) so the result is a pure function of the
// file contents, independent of directory enumeration or reader. Partial
// trailing lines (a SIGKILL mid-append) are skipped, counted in
// `*dropped_lines` when given.
[[nodiscard]] std::vector<FarmEvent> read_farm_events(
    const std::string& spool, std::size_t* dropped_lines = nullptr);

// The worker-side publisher run_worker_loop drives. All writes go through
// the atomic/append helpers above; nothing here touches the unit records,
// the claims, or the campaign config hash.
struct WorkerTelemetryOptions {
  std::string worker_id;  // sanitized on construction; empty -> "worker"
  double heartbeat_interval_seconds = 5.0;  // between-cell cadence
};

class WorkerTelemetry {
 public:
  WorkerTelemetry(const std::string& spool,
                  const WorkerTelemetryOptions& options);

  // Hooks, in run_worker_loop order.
  void on_start(const Manifest& manifest);
  void on_claim(const WorkUnit& unit);
  void on_claim_conflict(const WorkUnit& unit);
  void on_cell_start(const WorkUnit& unit, std::uint64_t cell_index);
  void on_unit_published(const WorkUnit& unit);
  void on_exit(const WorkerReport& report);

  [[nodiscard]] const std::string& worker_id() const noexcept {
    return options_.worker_id;
  }

  // Builds the current snapshot and atomically publishes it (public so the
  // CLI can force a final beat around error paths).
  void publish_heartbeat();

 private:
  [[nodiscard]] bool heartbeat_due() const;

  std::string spool_;
  WorkerTelemetryOptions options_;
  EventLog events_;
  std::uint64_t instructions_per_cell_ = 0;
  std::uint64_t seq_ = 0;
  std::uint32_t units_done_ = 0;
  std::uint64_t cells_done_ = 0;
  std::int64_t current_unit_ = -1;
  std::int64_t current_cell_ = -1;
  bool exited_ = false;
  double start_monotonic_seconds_ = 0.0;
  double claim_monotonic_seconds_ = 0.0;  // of the unit in flight
  double last_beat_monotonic_seconds_ = 0.0;
  bool ever_beat_ = false;
};

// ---- The read side: farm_status ----------------------------------------

struct StalenessPolicy {
  // A worker whose last heartbeat is at least this old is a straggler...
  double straggler_after_seconds = 15.0;
  // ...and at least this old is presumed dead (its claim is re-runnable
  // after a resume sweep).
  double dead_after_seconds = 60.0;
};

enum class WorkerState { kRunning, kStraggler, kDead, kExited };
[[nodiscard]] const char* to_string(WorkerState state) noexcept;
// Inverse of to_string; throws std::runtime_error on an unknown name.
[[nodiscard]] WorkerState worker_state_by_name(const std::string& name);

// Pure classification (tested at the exact boundaries): exited beats age;
// age >= dead_after is dead, age >= straggler_after is a straggler,
// younger is running. Negative ages (clock skew) count as zero.
[[nodiscard]] WorkerState classify_worker(const WorkerHeartbeat& heartbeat,
                                          double now_unix_seconds,
                                          const StalenessPolicy& policy);

struct WorkerStatus {
  WorkerHeartbeat heartbeat;
  WorkerState state = WorkerState::kRunning;
  double age_seconds = 0.0;        // now - heartbeat publication
  double cells_per_second = 0.0;   // lifetime rate
};

struct FarmStatusOptions {
  StalenessPolicy staleness;
  // Evaluation instant; 0 = current wall clock. Tests pin it for
  // deterministic classification.
  double now_unix_seconds = 0.0;
};

struct FarmStatus {
  // Status-NDJSON schema of the producer. Locally collected status always
  // carries kStatusSchemaVersion; farm_status_from_ndjson() preserves the
  // (possibly older) version the remote server reported.
  int schema = kStatusSchemaVersion;
  SpoolStatus census;
  std::uint64_t total_cells = 0;
  // Outstanding claims split by whether a non-dead worker says it is
  // currently inside that unit.
  std::uint32_t claims_live = 0;
  std::uint32_t claims_stale = 0;
  std::vector<WorkerStatus> workers;  // sorted by worker id
  std::size_t event_count = 0;
  std::size_t dropped_event_lines = 0;
  std::size_t unreadable_heartbeats = 0;
  obs::Log2Histogram unit_latency_ms;  // claim→publish, from publish events
  double now_unix_seconds = 0.0;
  double elapsed_seconds = 0.0;  // since the earliest recorded event
  obs::Throughput throughput;    // fleet cells/sec + ETA over elapsed

  // Grid complete and no worker still running or straggling.
  [[nodiscard]] bool drained() const noexcept;
};

// Reconstructs fleet state from files alone: census, heartbeats classified
// against the staleness policy, merged events, per-unit latency histogram,
// throughput and ETA.
[[nodiscard]] FarmStatus collect_farm_status(
    const std::string& spool, const Manifest& manifest,
    const FarmStatusOptions& options = {});

// Human-readable fleet table (census, per-worker rows, latency histogram).
[[nodiscard]] std::string render_farm_status(const FarmStatus& status);

// NDJSON for scripting: one {"type":"farm",...} summary line, then one
// {"type":"worker",...} line per worker. Every record carries
// "schema": kStatusSchemaVersion.
[[nodiscard]] std::string farm_status_to_ndjson(const FarmStatus& status);

// Inverse of farm_status_to_ndjson for remote readers (icr_report --farm
// over a /status URL): rebuilds a FarmStatus from the NDJSON text. Records
// without a "schema" field parse as version 1; a schema *newer* than this
// build throws std::runtime_error (the reader cannot know what changed).
// Fields the wire format does not carry (unit latency histogram,
// now_unix_seconds) are left default; callers can refill the histogram
// from /events publish durations.
[[nodiscard]] FarmStatus farm_status_from_ndjson(const std::string& text);

// ---- Fleet-wide Chrome trace merge --------------------------------------

// Coordinator-synthesized fleet timeline: every publish event becomes a
// complete ("ph":"X") span from claim to publish under pid 0 ("farm
// fleet"), one tid per worker, timestamps in absolute unix microseconds —
// the same clock per-worker --prof captures are exported on, so the two
// merge into one aligned timeline.
[[nodiscard]] std::string fleet_unit_spans_trace(
    const std::vector<FarmEvent>& events);

// The synthesized spans plus every worker capture under spool/prof/,
// spliced into one Perfetto-loadable document
// (obs::prof::merge_chrome_traces).
[[nodiscard]] std::string merge_fleet_trace(const std::string& spool);

}  // namespace icr::sim::farm
