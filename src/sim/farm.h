// Multi-process campaign farm: sharding, spool protocol, checkpointed cell
// records, and the streaming aggregator.
//
// The campaign engine (src/sim/campaign.h) scales a (variants x apps x
// trials) grid to one machine's threads; the farm scales it to any number
// of worker *processes* — spawned by one coordinator or started by hand on
// several hosts sharing a spool directory — while keeping the engine's
// determinism contract: exported results are bit-identical at any worker
// count, including after an arbitrary kill/resume, because every cell's
// seed comes from derive_cell_seed() and never from which process ran it.
//
// Spool directory layout:
//
//   spool/
//     manifest.json              # grid + sharding + config fingerprint
//     claims/unit_NNNNNN.claim   # exclusive-create claim lock per unit
//     units/unit_NNNNNN.json     # completed unit: per-cell records
//
// Protocol (docs/CAMPAIGN.md has the full write-up):
//
//   * The coordinator shards the grid into contiguous work units of
//     `unit_cells` cells and atomically writes manifest.json.
//   * A worker scans units in index order; for each unit whose record file
//     does not exist it tries to claim it by exclusively creating the
//     claim file (util::fs::try_create_exclusive — at most one winner per
//     unit, on any POSIX filesystem). The winner runs the unit's cells
//     through run_campaign_cell() and publishes units/unit_N.json by
//     atomic rename. Workers exit when a full scan finds nothing to claim.
//   * A killed worker leaves a claim without a record (and possibly a temp
//     file). Resume = clear_stale_claims() + run more workers: the unit is
//     re-run from scratch and — cells being deterministic — produces the
//     exact bytes the killed worker would have.
//   * The aggregator streams completed units in index order (== grid
//     order, units are contiguous ranges) into the CSV/JSON exporters
//     through the shared results_io building blocks. Memory is bounded by
//     one unit, never the grid.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/campaign.h"

namespace icr::sim::farm {

class WorkerTelemetry;  // src/sim/farm_telemetry.h

// Bumped when the manifest/unit schema changes incompatibly; readers
// reject other versions instead of misparsing them.
inline constexpr int kFormatVersion = 1;

// Contiguous half-open range [begin, end) of grid cell indices.
struct WorkUnit {
  std::uint32_t index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t cells() const noexcept { return end - begin; }
};

// Deterministic sharding: ceil(total/unit_cells) contiguous units in index
// order; every cell index in [0, total) lands in exactly one unit
// (property-tested in tests/farm_test.cc). unit_cells == 0 is treated as 1.
[[nodiscard]] std::vector<WorkUnit> shard_units(std::uint64_t total_cells,
                                                std::uint64_t unit_cells);

// Everything a worker process needs to reproduce the campaign spec, plus
// the sharding and the config fingerprint that guards against running a
// spool with mismatched code or flags. The scheme/app name lists rebuild
// the spec CLI-style (spec_from_manifest); library users that construct
// specs programmatically can leave them empty and pass the spec to
// run_worker_loop directly — the config_hash check still applies.
struct Manifest {
  int version = kFormatVersion;
  std::uint64_t config_hash = 0;  // campaign_config_hash of the spec
  std::uint64_t base_seed = 0;
  std::uint64_t instructions = 0;  // resolved budget per cell (never 0)
  std::uint32_t trials = 1;
  bool derive_seeds = false;
  std::uint32_t variant_count = 0;
  std::uint32_t app_count = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t unit_cells = 0;  // shard size
  std::uint32_t unit_count = 0;
  std::vector<std::string> schemes;  // variant labels, cli-resolvable
  std::vector<std::string> apps;     // app names, cli-resolvable
  std::uint64_t decay_window = 0;
  std::string fault_model = "random";
  double fault_probability = 0.0;
  SamplingOptions sampling;
  // Trace campaign (interval shards replace the app axis). Serialized as
  // an optional "trace" object only when enabled, so synthetic-campaign
  // manifests are byte-identical to previous versions. An old reader
  // ignores the key, reconstructs a synthetic spec, and fails the config
  // hash check — a loud mismatch, never silently different numbers.
  TraceCampaignOptions trace;
  // Geometry sweep axes (docs/GEOMETRY.md). Serialized as an optional
  // "geometry" object only when enabled — same schema-stability contract
  // as "trace". For swept campaigns `schemes` carries the *base* scheme
  // labels (cli-resolvable); spec_from_manifest re-runs the deterministic
  // expand_geometry_sweep() to recover the full variant grid, and the
  // config hash check proves the re-expansion matched.
  GeometrySweep geometry;

  [[nodiscard]] std::string to_json() const;
  // Parses a manifest document (throws std::runtime_error on malformed
  // input or a format-version mismatch).
  [[nodiscard]] static Manifest parse(const std::string& text);
};

// Manifest for `spec`, with the grid expanded and instructions resolved.
// The scheme/app name lists are filled from the spec's variant labels and
// app names — resolvable back through sim::cli for CLI-built specs.
[[nodiscard]] Manifest manifest_for(const CampaignSpec& spec,
                                    std::uint64_t unit_cells);

// Rebuilds the CampaignSpec of a CLI-built manifest (scheme/app names plus
// the flag-level knobs). Exits via sim::cli lookups on unknown names;
// callers must verify campaign_config_hash(spec) == manifest.config_hash
// before trusting the reconstruction (the CLI worker does).
[[nodiscard]] CampaignSpec spec_from_manifest(const Manifest& manifest);

// Spool paths. unit/claim files embed the unit index zero-padded so
// lexicographic directory order equals index order.
[[nodiscard]] std::string manifest_path(const std::string& spool);
[[nodiscard]] std::string unit_path(const std::string& spool,
                                    std::uint32_t unit);
[[nodiscard]] std::string claim_path(const std::string& spool,
                                     std::uint32_t unit);

// Creates the spool directories and atomically writes the manifest.
void init_spool(const std::string& spool, const Manifest& manifest);

// Reads and parses spool/manifest.json (throws on absence or mismatch).
[[nodiscard]] Manifest load_manifest(const std::string& spool);

// Removes claims whose unit record was never published — the footprint of
// killed workers — so their units become claimable again. Returns how many
// were cleared; `cleared_units`, when given, receives their indices (the
// coordinator logs one stale-clear telemetry event per unit). Only safe
// when no worker is currently running; the coordinator calls it on
// --resume before spawning workers.
std::size_t clear_stale_claims(const std::string& spool,
                               std::uint32_t unit_count,
                               std::vector<std::uint32_t>* cleared_units =
                                   nullptr);

// One checkpointed cell: grid coordinates, labels, the exported metric
// vector as raw IEEE-754 bit patterns (exact round-trip — format_value of
// a reloaded metric prints the same bytes the in-memory exporter would),
// and sampling provenance.
struct CellRecord {
  std::uint32_t variant_idx = 0;
  std::uint32_t app_idx = 0;
  std::uint32_t trial_idx = 0;
  std::uint64_t seed = 0;
  std::string variant;
  std::string app;
  std::vector<std::uint64_t> metric_bits;
  SampleProvenance sampling;
  // Serialized as an optional "geometry" object only when present, so
  // unswept unit records keep their historical bytes.
  GeometryProvenance geometry;

  [[nodiscard]] static CellRecord from_cell(const CellResult& cell);
  [[nodiscard]] std::vector<double> metrics() const;
};

// Unit record document: {"version", "unit", "cells": [...]}.
[[nodiscard]] std::string unit_to_json(std::uint32_t unit,
                                       const std::vector<CellRecord>& cells);
// Throws on malformed input, version mismatch, or a record for a
// different unit index.
[[nodiscard]] std::vector<CellRecord> parse_unit_json(
    const std::string& text, std::uint32_t expected_unit);

// Runs the cells of `unit` sequentially through run_campaign_cell().
// `instructions` must equal the manifest's resolved budget. `on_cell`,
// when set, fires with the grid cell index before each cell runs (worker
// telemetry hangs its between-cell heartbeat check here); it never
// observes or influences the cell results.
[[nodiscard]] std::vector<CellRecord> run_unit(
    const CampaignSpec& spec, const WorkUnit& unit,
    std::uint64_t instructions,
    const std::function<void(std::uint64_t)>& on_cell = nullptr);

struct WorkerReport {
  std::uint32_t units_run = 0;
  std::uint64_t cells_run = 0;
};

// The worker loop: scan, claim, run, publish, until a full scan claims
// nothing (or `max_units` units were run; 0 = unlimited). `spec` must
// hash-match the manifest (checked; throws on mismatch). `on_unit_done`,
// when set, fires after each published unit — the CLI worker uses it for
// progress lines. `telemetry`, when set, publishes heartbeats and
// lifecycle events into the spool (src/sim/farm_telemetry.h); it writes
// only under spool/hb and spool/events, so the unit records — and the
// byte-identity of aggregated exports — are untouched.
WorkerReport run_worker_loop(
    const std::string& spool, const CampaignSpec& spec,
    std::uint32_t max_units = 0,
    const std::function<void(const WorkUnit&)>& on_unit_done = nullptr,
    WorkerTelemetry* telemetry = nullptr);

// Completion census of a spool, by unit record files present.
struct SpoolStatus {
  std::uint32_t unit_count = 0;
  std::uint32_t units_done = 0;
  std::uint64_t cells_done = 0;
  std::uint32_t claims_outstanding = 0;  // claimed but not yet published

  [[nodiscard]] bool complete() const noexcept {
    return units_done == unit_count;
  }
};

[[nodiscard]] SpoolStatus scan_spool(const std::string& spool,
                                     const Manifest& manifest);

// Streams completed units, in index order, into CSV and/or JSON sinks
// through the shared results_io building blocks. State is a fixed set of
// counters — independent of grid size (asserted in tests/farm_test.cc) —
// so a million-cell campaign aggregates in constant memory.
class FarmAggregator {
 public:
  // Either sink may be null; the other still streams.
  FarmAggregator(const Manifest& manifest, std::ostream* csv,
                 std::ostream* json);

  // Must be called with consecutive unit indices starting at 0; the cells
  // of `records` are appended in their stored order.
  void add_unit(std::uint32_t unit, const std::vector<CellRecord>& records);

  // Finishes the JSON document; throws if the streamed cell count does not
  // equal the manifest's grid size (an incomplete spool must never silently
  // export a truncated campaign).
  void finish();

  // Bytes of aggregator-owned state (excluding the manifest copy's name
  // lists, which scale with the spec, not with cells): the bounded-memory
  // guarantee the tests pin down.
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  [[nodiscard]] std::uint64_t cells_emitted() const noexcept {
    return cells_emitted_;
  }

 private:
  Manifest manifest_;
  std::ostream* csv_;
  std::ostream* json_;
  std::uint32_t next_unit_ = 0;
  std::uint64_t cells_emitted_ = 0;
  bool finished_ = false;
};

// Aggregates a complete spool to files (empty path = skip that format).
// Throws if the spool is incomplete or a unit fails to parse.
void aggregate_spool(const std::string& spool, const Manifest& manifest,
                     const std::string& csv_out, const std::string& json_out);

}  // namespace icr::sim::farm
