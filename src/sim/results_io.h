// Structured export of campaign results.
//
// Two formats, one schema:
//   * CSV — a header row of metric_columns(), then one row per cell in
//     grid order. Made for pandas/gnuplot; values are locale-independent.
//   * JSON — a "campaign" metadata object (base seed, config hash,
//     instruction count, threads, wall time, cells/sec) plus a "cells"
//     array whose per-cell "metrics" object mirrors the CSV columns.
//
// Timing fields (threads, wall_seconds, cells_per_second) are the only
// run-dependent outputs; pass include_timing = false to omit them and get
// byte-identical text for byte-identical experiments — the property
// tests/campaign_test.cc locks in across thread counts.
//
// Sampled campaigns (meta.sampling.enabled()) additionally carry
// provenance: CSV rows gain sampled/warmup/sample_windows/
// measured_instructions/sample_coverage columns, the JSON grows a
// campaign-level "sampling" options object and a per-cell "sampling"
// provenance object. Unsampled campaigns keep the historical schema byte
// for byte (guarded by tests/sampling_test.cc).
#pragma once

#include <string>
#include <vector>

#include "src/sim/campaign.h"

namespace icr::sim {

// Names of the per-cell metric columns, aligned with metric_values().
[[nodiscard]] const std::vector<std::string>& metric_columns();

// The exported metrics of one run, aligned with metric_columns(). This is
// also the "did two runs agree?" vector: campaigns are deterministic iff
// these values are bit-identical cell by cell.
[[nodiscard]] std::vector<double> metric_values(const RunResult& result);

[[nodiscard]] std::string to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string to_json(const CampaignResult& campaign,
                                  bool include_timing = true);

// Streaming building blocks of the two exporters above. to_csv/to_json are
// literally header + rows + epilogue through these functions, and the
// campaign farm's aggregator (src/sim/farm.h) emits through the same ones
// from checkpointed cell records — so farmed exports are byte-identical to
// in-memory ones by construction, not by parallel maintenance of two
// writers. `sampling == nullptr` means an unsampled campaign (historical
// schema); pass a provenance object for every row of a sampled one.
// Likewise `geometry == nullptr` / `geometry = false` means no geometry
// sweep: CSV rows gain dl1_size/dl1_assoc/ways_disabled columns (after the
// seed) and JSON cells a "geometry" object only for geometry-swept
// campaigns, keeping legacy export bytes untouched (docs/GEOMETRY.md).
[[nodiscard]] std::string results_csv_header(bool sampled,
                                             bool geometry = false);
void append_results_csv_row(std::string& out, const std::string& variant,
                            const std::string& app, std::uint32_t trial,
                            std::uint64_t seed,
                            const std::vector<double>& metrics,
                            const SampleProvenance* sampling,
                            const GeometryProvenance* geometry = nullptr);
// JSON document skeleton: prologue (campaign meta + opening of the cells
// array, `cells` = grid size), one object per cell (`last` controls the
// trailing comma), closing epilogue.
[[nodiscard]] std::string results_json_prologue(const CampaignMeta& meta,
                                                std::size_t cells,
                                                bool include_timing);
void append_results_json_cell(std::string& out, const std::string& variant,
                              const std::string& app, std::uint32_t trial,
                              std::uint64_t seed,
                              const std::vector<double>& metrics,
                              const SampleProvenance* sampling, bool last,
                              const GeometryProvenance* geometry = nullptr);
[[nodiscard]] std::string results_json_epilogue();

// Observability exports over every cell that recorded telemetry (cells
// without it are skipped). Schemas live in src/obs/obs_io.h.
[[nodiscard]] std::string intervals_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string occupancy_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string trace_to_ndjson(const CampaignResult& campaign);

// Analytical reliability exports over every cell that tracked rel (cells
// without a report are skipped). Schemas live in src/rel/rel_io.h.
[[nodiscard]] std::string rel_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string rel_intervals_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string rel_to_json(const CampaignResult& campaign);

// Writes `text` to `path`, overwriting; throws std::runtime_error on I/O
// failure so campaign CLIs fail loudly instead of dropping results.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace icr::sim
