// Structured export of campaign results.
//
// Two formats, one schema:
//   * CSV — a header row of metric_columns(), then one row per cell in
//     grid order. Made for pandas/gnuplot; values are locale-independent.
//   * JSON — a "campaign" metadata object (base seed, config hash,
//     instruction count, threads, wall time, cells/sec) plus a "cells"
//     array whose per-cell "metrics" object mirrors the CSV columns.
//
// Timing fields (threads, wall_seconds, cells_per_second) are the only
// run-dependent outputs; pass include_timing = false to omit them and get
// byte-identical text for byte-identical experiments — the property
// tests/campaign_test.cc locks in across thread counts.
//
// Sampled campaigns (meta.sampling.enabled()) additionally carry
// provenance: CSV rows gain sampled/warmup/sample_windows/
// measured_instructions/sample_coverage columns, the JSON grows a
// campaign-level "sampling" options object and a per-cell "sampling"
// provenance object. Unsampled campaigns keep the historical schema byte
// for byte (guarded by tests/sampling_test.cc).
#pragma once

#include <string>
#include <vector>

#include "src/sim/campaign.h"

namespace icr::sim {

// Names of the per-cell metric columns, aligned with metric_values().
[[nodiscard]] const std::vector<std::string>& metric_columns();

// The exported metrics of one run, aligned with metric_columns(). This is
// also the "did two runs agree?" vector: campaigns are deterministic iff
// these values are bit-identical cell by cell.
[[nodiscard]] std::vector<double> metric_values(const RunResult& result);

[[nodiscard]] std::string to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string to_json(const CampaignResult& campaign,
                                  bool include_timing = true);

// Observability exports over every cell that recorded telemetry (cells
// without it are skipped). Schemas live in src/obs/obs_io.h.
[[nodiscard]] std::string intervals_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string occupancy_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string trace_to_ndjson(const CampaignResult& campaign);

// Analytical reliability exports over every cell that tracked rel (cells
// without a report are skipped). Schemas live in src/rel/rel_io.h.
[[nodiscard]] std::string rel_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string rel_intervals_to_csv(const CampaignResult& campaign);
[[nodiscard]] std::string rel_to_json(const CampaignResult& campaign);

// Writes `text` to `path`, overwriting; throws std::runtime_error on I/O
// failure so campaign CLIs fail loudly instead of dropping results.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace icr::sim
