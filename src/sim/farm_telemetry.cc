#include "src/sim/farm_telemetry.h"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/obs/prof_io.h"
#include "src/util/fs.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace icr::sim::farm {
namespace {

// %.17g: shortest text that reparses to the exact same double, matching the
// manifest/unit writers in farm.cc.
std::string exact_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

// Status output is for humans and scripts, not for byte-identity; six
// significant digits keep the NDJSON readable.
std::string brief_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

std::string i64_string(std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%lld",
                static_cast<long long>(value));
  return buffer;
}

std::string u64_string(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

double unix_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void bad_telemetry(const std::string& what) {
  throw std::runtime_error("farm telemetry: " + what);
}

std::string heartbeat_file_name(const std::string& worker_id) {
  return "worker-" + worker_id + ".json";
}

std::string event_file_name(const std::string& worker_id) {
  return "worker-" + worker_id + ".ndjson";
}

std::string trace_file_name(const std::string& worker_id) {
  return "worker-" + worker_id + ".json";
}

}  // namespace

std::string sanitize_worker_id(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (const char c : id) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "worker";
  return out;
}

std::string heartbeat_dir(const std::string& spool) { return spool + "/hb"; }

std::string event_log_dir(const std::string& spool) {
  return spool + "/events";
}

std::string worker_trace_dir(const std::string& spool) {
  return spool + "/prof";
}

std::string heartbeat_path(const std::string& spool,
                           const std::string& worker_id) {
  return heartbeat_dir(spool) + "/" +
         heartbeat_file_name(sanitize_worker_id(worker_id));
}

std::string event_log_path(const std::string& spool,
                           const std::string& worker_id) {
  return event_log_dir(spool) + "/" +
         event_file_name(sanitize_worker_id(worker_id));
}

std::string worker_trace_path(const std::string& spool,
                              const std::string& worker_id) {
  return worker_trace_dir(spool) + "/" +
         trace_file_name(sanitize_worker_id(worker_id));
}

RusageSnapshot capture_rusage() {
  RusageSnapshot snapshot;
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux (bytes on macOS; close enough for a
    // fleet dashboard either way — the unit is recorded in the field name).
    snapshot.maxrss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
    snapshot.utime_seconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    snapshot.stime_seconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
  }
  return snapshot;
}

std::string WorkerHeartbeat::to_json() const {
  std::string out = "{\n  \"hb\": {\n";
  out += "    \"version\": " + std::to_string(version) + ",\n";
  out += "    \"worker\": \"" + util::json_escape(worker_id) + "\",\n";
  out += "    \"pid\": " + i64_string(pid) + ",\n";
  out += "    \"seq\": " + u64_string(seq) + ",\n";
  out += "    \"time_unix\": " + exact_double(time_unix_seconds) + ",\n";
  out += "    \"uptime_seconds\": " + exact_double(uptime_seconds) + ",\n";
  out += "    \"units_done\": " + std::to_string(units_done) + ",\n";
  out += "    \"cells_done\": " + u64_string(cells_done) + ",\n";
  out += "    \"current_unit\": " + i64_string(current_unit) + ",\n";
  out += "    \"current_cell\": " + i64_string(current_cell) + ",\n";
  out += "    \"instructions_done\": " + u64_string(instructions_done) + ",\n";
  out += "    \"mips\": " + exact_double(mips) + ",\n";
  out += std::string("    \"exited\": ") + (exited ? "true" : "false") + ",\n";
  out += "    \"rusage\": {\"maxrss_kb\": " + u64_string(rusage.maxrss_kb) +
         ", \"utime_seconds\": " + exact_double(rusage.utime_seconds) +
         ", \"stime_seconds\": " + exact_double(rusage.stime_seconds) +
         "},\n";
  out += "    \"prof\": [";
  for (std::size_t i = 0; i < prof_zones.size(); ++i) {
    const obs::prof::ZoneNode& zone = prof_zones[i];
    if (i != 0) out += ',';
    out += "\n      {\"path\": \"" + util::json_escape(zone.path) +
           "\", \"zone\": \"" + util::json_escape(zone.name) +
           "\", \"depth\": " + std::to_string(zone.depth) +
           ", \"count\": " + u64_string(zone.count) +
           ", \"total_ns\": " + u64_string(zone.total_ns) +
           ", \"self_ns\": " + u64_string(zone.self_ns) + "}";
  }
  if (!prof_zones.empty()) out += "\n    ";
  out += "]\n  }\n}\n";
  return out;
}

WorkerHeartbeat WorkerHeartbeat::parse(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  const util::JsonValue& h = doc.get("hb");
  if (!h.is_object()) bad_telemetry("heartbeat has no \"hb\" object");
  WorkerHeartbeat hb;
  hb.version = static_cast<int>(h.get("version").as_double(-1));
  if (hb.version != kTelemetryFormatVersion) {
    bad_telemetry("heartbeat version " + std::to_string(hb.version) +
                  " (this build reads version " +
                  std::to_string(kTelemetryFormatVersion) + ")");
  }
  hb.worker_id = h.get("worker").as_string();
  if (hb.worker_id.empty()) bad_telemetry("heartbeat has no worker id");
  hb.pid = static_cast<std::int64_t>(h.get("pid").as_double(0.0));
  hb.seq = static_cast<std::uint64_t>(h.get("seq").as_double(0.0));
  hb.time_unix_seconds = h.get("time_unix").as_double(0.0);
  hb.uptime_seconds = h.get("uptime_seconds").as_double(0.0);
  hb.units_done =
      static_cast<std::uint32_t>(h.get("units_done").as_double(0.0));
  hb.cells_done =
      static_cast<std::uint64_t>(h.get("cells_done").as_double(0.0));
  hb.current_unit =
      static_cast<std::int64_t>(h.get("current_unit").as_double(-1.0));
  hb.current_cell =
      static_cast<std::int64_t>(h.get("current_cell").as_double(-1.0));
  hb.instructions_done =
      static_cast<std::uint64_t>(h.get("instructions_done").as_double(0.0));
  hb.mips = h.get("mips").as_double(0.0);
  hb.exited = h.get("exited").as_bool(false);
  const util::JsonValue& usage = h.get("rusage");
  hb.rusage.maxrss_kb =
      static_cast<std::uint64_t>(usage.get("maxrss_kb").as_double(0.0));
  hb.rusage.utime_seconds = usage.get("utime_seconds").as_double(0.0);
  hb.rusage.stime_seconds = usage.get("stime_seconds").as_double(0.0);
  for (const util::JsonValue& z : h.get("prof").items()) {
    obs::prof::ZoneNode zone;
    zone.path = z.get("path").as_string();
    zone.name = z.get("zone").as_string();
    zone.depth = static_cast<int>(z.get("depth").as_double(0.0));
    zone.count = static_cast<std::uint64_t>(z.get("count").as_double(0.0));
    zone.total_ns =
        static_cast<std::uint64_t>(z.get("total_ns").as_double(0.0));
    zone.self_ns =
        static_cast<std::uint64_t>(z.get("self_ns").as_double(0.0));
    hb.prof_zones.push_back(std::move(zone));
  }
  return hb;
}

const char* to_string(FarmEventType type) noexcept {
  switch (type) {
    case FarmEventType::kWorkerStart: return "worker_start";
    case FarmEventType::kClaim: return "claim";
    case FarmEventType::kClaimConflict: return "claim_conflict";
    case FarmEventType::kPublish: return "publish";
    case FarmEventType::kStaleClear: return "stale_clear";
    case FarmEventType::kResumeSweep: return "resume_sweep";
    case FarmEventType::kExit: return "exit";
  }
  return "unknown";
}

FarmEventType event_type_by_name(const std::string& name) {
  for (const FarmEventType type :
       {FarmEventType::kWorkerStart, FarmEventType::kClaim,
        FarmEventType::kClaimConflict, FarmEventType::kPublish,
        FarmEventType::kStaleClear, FarmEventType::kResumeSweep,
        FarmEventType::kExit}) {
    if (name == to_string(type)) return type;
  }
  bad_telemetry("unknown event type \"" + name + "\"");
}

std::string FarmEvent::to_ndjson_line() const {
  std::string out = "{\"v\":" + std::to_string(kTelemetryFormatVersion) +
                    ",\"worker\":\"" + util::json_escape(worker_id) +
                    "\",\"seq\":" + u64_string(seq) +
                    ",\"t\":" + exact_double(time_unix_seconds) +
                    ",\"type\":\"" + to_string(type) +
                    "\",\"unit\":" + i64_string(unit) +
                    ",\"cells\":" + u64_string(cells) +
                    ",\"dur\":" + exact_double(duration_seconds);
  if (!detail.empty()) {
    out += ",\"detail\":\"" + util::json_escape(detail) + "\"";
  }
  out += "}\n";
  return out;
}

FarmEvent FarmEvent::parse(const std::string& line) {
  const util::JsonValue doc = util::JsonValue::parse(line);
  if (!doc.is_object()) bad_telemetry("event line is not an object");
  const int version = static_cast<int>(doc.get("v").as_double(-1));
  if (version != kTelemetryFormatVersion) {
    bad_telemetry("event version " + std::to_string(version));
  }
  FarmEvent event;
  event.worker_id = doc.get("worker").as_string();
  if (event.worker_id.empty()) bad_telemetry("event has no worker id");
  event.seq = static_cast<std::uint64_t>(doc.get("seq").as_double(0.0));
  event.time_unix_seconds = doc.get("t").as_double(0.0);
  event.type = event_type_by_name(doc.get("type").as_string());
  event.unit = static_cast<std::int64_t>(doc.get("unit").as_double(-1.0));
  event.cells = static_cast<std::uint64_t>(doc.get("cells").as_double(0.0));
  event.duration_seconds = doc.get("dur").as_double(0.0);
  event.detail = doc.get("detail").as_string();
  return event;
}

EventLog::EventLog(const std::string& spool, const std::string& worker_id)
    : worker_id_(sanitize_worker_id(worker_id)) {
  util::fs::make_directories(event_log_dir(spool));
  path_ = event_log_path(spool, worker_id_);
  // Resume the per-worker sequence from an existing log so numbers stay
  // monotonic across process restarts (the coordinator reuses its id).
  if (util::fs::exists(path_)) {
    const std::string text = util::fs::read_text_file(path_);
    std::size_t begin = 0;
    while (begin < text.size()) {
      const std::size_t end = text.find('\n', begin);
      if (end == std::string::npos) break;  // partial trailing line
      try {
        const FarmEvent event = FarmEvent::parse(text.substr(begin, end - begin));
        next_seq_ = std::max(next_seq_, event.seq + 1);
      } catch (const std::exception&) {
        // Corrupt line: skip; the reader counts it, the writer just needs
        // a sequence floor.
      }
      begin = end + 1;
    }
  }
}

void EventLog::append(FarmEventType type, std::int64_t unit,
                      std::uint64_t cells, double duration_seconds,
                      const std::string& detail) {
  FarmEvent event;
  event.worker_id = worker_id_;
  event.seq = next_seq_++;
  event.time_unix_seconds = unix_now_seconds();
  event.type = type;
  event.unit = unit;
  event.cells = cells;
  event.duration_seconds = duration_seconds;
  event.detail = detail;
  util::fs::append_text_file(path_, event.to_ndjson_line());
}

std::vector<FarmEvent> read_farm_events(const std::string& spool,
                                        std::size_t* dropped_lines) {
  std::vector<FarmEvent> events;
  std::size_t dropped = 0;
  const std::string dir = event_log_dir(spool);
  if (util::fs::exists(dir)) {
    for (const std::string& name : util::fs::list_directory(dir)) {
      if (name.rfind("worker-", 0) != 0) continue;
      if (name.size() < 7 || name.substr(name.size() - 7) != ".ndjson") {
        continue;
      }
      const std::string text = util::fs::read_text_file(dir + "/" + name);
      std::size_t begin = 0;
      while (begin < text.size()) {
        const std::size_t end = text.find('\n', begin);
        if (end == std::string::npos) {
          // No terminator: the writer was killed mid-append (or is mid
          // write on another host). Never a parse target.
          ++dropped;
          break;
        }
        if (end > begin) {
          try {
            events.push_back(FarmEvent::parse(text.substr(begin, end - begin)));
          } catch (const std::exception&) {
            ++dropped;
          }
        }
        begin = end + 1;
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FarmEvent& a, const FarmEvent& b) {
                     if (a.time_unix_seconds != b.time_unix_seconds) {
                       return a.time_unix_seconds < b.time_unix_seconds;
                     }
                     if (a.worker_id != b.worker_id) {
                       return a.worker_id < b.worker_id;
                     }
                     return a.seq < b.seq;
                   });
  if (dropped_lines != nullptr) *dropped_lines = dropped;
  return events;
}

WorkerTelemetry::WorkerTelemetry(const std::string& spool,
                                 const WorkerTelemetryOptions& options)
    : spool_(spool),
      options_(options),
      events_(spool, options.worker_id) {
  options_.worker_id = events_.worker_id();  // sanitized form
  util::fs::make_directories(heartbeat_dir(spool_));
  start_monotonic_seconds_ = monotonic_seconds();
}

void WorkerTelemetry::on_start(const Manifest& manifest) {
  instructions_per_cell_ = manifest.instructions;
  events_.append(FarmEventType::kWorkerStart, -1, manifest.total_cells);
  publish_heartbeat();  // make the worker visible before its first claim
}

void WorkerTelemetry::on_claim(const WorkUnit& unit) {
  current_unit_ = static_cast<std::int64_t>(unit.index);
  current_cell_ = -1;
  claim_monotonic_seconds_ = monotonic_seconds();
  events_.append(FarmEventType::kClaim, current_unit_, unit.cells());
}

void WorkerTelemetry::on_claim_conflict(const WorkUnit& unit) {
  events_.append(FarmEventType::kClaimConflict,
                 static_cast<std::int64_t>(unit.index), unit.cells());
}

void WorkerTelemetry::on_cell_start(const WorkUnit& unit,
                                    std::uint64_t cell_index) {
  current_unit_ = static_cast<std::int64_t>(unit.index);
  current_cell_ = static_cast<std::int64_t>(cell_index);
  // Time-based cadence only: between cells the heartbeat costs one clock
  // read unless the interval elapsed.
  if (heartbeat_due()) publish_heartbeat();
}

void WorkerTelemetry::on_unit_published(const WorkUnit& unit) {
  ++units_done_;
  cells_done_ += unit.cells();
  const double duration = monotonic_seconds() - claim_monotonic_seconds_;
  current_unit_ = -1;
  current_cell_ = -1;
  events_.append(FarmEventType::kPublish,
                 static_cast<std::int64_t>(unit.index), unit.cells(),
                 duration);
  publish_heartbeat();  // forced at every unit boundary
}

void WorkerTelemetry::on_exit(const WorkerReport& report) {
  exited_ = true;
  current_unit_ = -1;
  current_cell_ = -1;
  events_.append(FarmEventType::kExit, -1, report.cells_run, 0.0,
                 "units=" + std::to_string(report.units_run));
  publish_heartbeat();
}

bool WorkerTelemetry::heartbeat_due() const {
  if (!ever_beat_) return true;
  return monotonic_seconds() - last_beat_monotonic_seconds_ >=
         options_.heartbeat_interval_seconds;
}

void WorkerTelemetry::publish_heartbeat() {
  const double now_monotonic = monotonic_seconds();
  WorkerHeartbeat hb;
  hb.worker_id = options_.worker_id;
  hb.pid = static_cast<std::int64_t>(::getpid());
  hb.seq = seq_++;
  hb.time_unix_seconds = unix_now_seconds();
  hb.uptime_seconds = now_monotonic - start_monotonic_seconds_;
  hb.units_done = units_done_;
  hb.cells_done = cells_done_;
  hb.current_unit = current_unit_;
  hb.current_cell = current_cell_;
  hb.instructions_done = cells_done_ * instructions_per_cell_;
  hb.mips = obs::simulated_mips(cells_done_, instructions_per_cell_,
                                hb.uptime_seconds);
  hb.exited = exited_;
  hb.rusage = capture_rusage();
  hb.prof_zones = obs::prof::snapshot_zones();
  util::fs::atomic_write_text_file(
      heartbeat_path(spool_, options_.worker_id), hb.to_json());
  last_beat_monotonic_seconds_ = now_monotonic;
  ever_beat_ = true;
}

const char* to_string(WorkerState state) noexcept {
  switch (state) {
    case WorkerState::kRunning: return "running";
    case WorkerState::kStraggler: return "straggler";
    case WorkerState::kDead: return "dead";
    case WorkerState::kExited: return "exited";
  }
  return "unknown";
}

WorkerState worker_state_by_name(const std::string& name) {
  if (name == "running") return WorkerState::kRunning;
  if (name == "straggler") return WorkerState::kStraggler;
  if (name == "dead") return WorkerState::kDead;
  if (name == "exited") return WorkerState::kExited;
  throw std::runtime_error("unknown worker state '" + name + "'");
}

WorkerState classify_worker(const WorkerHeartbeat& heartbeat,
                            double now_unix_seconds,
                            const StalenessPolicy& policy) {
  if (heartbeat.exited) return WorkerState::kExited;
  const double age =
      std::max(0.0, now_unix_seconds - heartbeat.time_unix_seconds);
  if (age >= policy.dead_after_seconds) return WorkerState::kDead;
  if (age >= policy.straggler_after_seconds) return WorkerState::kStraggler;
  return WorkerState::kRunning;
}

bool FarmStatus::drained() const noexcept {
  if (!census.complete()) return false;
  for (const WorkerStatus& worker : workers) {
    if (worker.state == WorkerState::kRunning ||
        worker.state == WorkerState::kStraggler) {
      return false;
    }
  }
  return true;
}

FarmStatus collect_farm_status(const std::string& spool,
                               const Manifest& manifest,
                               const FarmStatusOptions& options) {
  FarmStatus status;
  status.census = scan_spool(spool, manifest);
  status.total_cells = manifest.total_cells;
  status.now_unix_seconds = options.now_unix_seconds != 0.0
                                ? options.now_unix_seconds
                                : unix_now_seconds();

  // Heartbeats: one file per worker, each a complete snapshot.
  const std::string hb_dir = heartbeat_dir(spool);
  if (util::fs::exists(hb_dir)) {
    for (const std::string& name : util::fs::list_directory(hb_dir)) {
      if (name.rfind("worker-", 0) != 0) continue;
      WorkerStatus worker;
      try {
        worker.heartbeat =
            WorkerHeartbeat::parse(util::fs::read_text_file(hb_dir + "/" + name));
      } catch (const std::exception&) {
        ++status.unreadable_heartbeats;
        continue;
      }
      worker.state = classify_worker(worker.heartbeat,
                                     status.now_unix_seconds,
                                     options.staleness);
      worker.age_seconds = std::max(
          0.0, status.now_unix_seconds - worker.heartbeat.time_unix_seconds);
      worker.cells_per_second =
          worker.heartbeat.uptime_seconds > 0.0
              ? static_cast<double>(worker.heartbeat.cells_done) /
                    worker.heartbeat.uptime_seconds
              : 0.0;
      status.workers.push_back(std::move(worker));
    }
  }
  std::sort(status.workers.begin(), status.workers.end(),
            [](const WorkerStatus& a, const WorkerStatus& b) {
              return a.heartbeat.worker_id < b.heartbeat.worker_id;
            });

  // Events: merged stream + per-unit latency histogram.
  std::vector<FarmEvent> events =
      read_farm_events(spool, &status.dropped_event_lines);
  status.event_count = events.size();
  double earliest = 0.0;
  bool have_earliest = false;
  for (const FarmEvent& event : events) {
    if (!have_earliest || event.time_unix_seconds < earliest) {
      earliest = event.time_unix_seconds;
      have_earliest = true;
    }
    if (event.type == FarmEventType::kPublish) {
      status.unit_latency_ms.record(static_cast<std::uint64_t>(
          std::llround(std::max(0.0, event.duration_seconds) * 1000.0)));
    }
  }
  if (!have_earliest) {
    // No events (telemetry off, or only heartbeats survived): fall back to
    // the oldest worker start implied by a heartbeat.
    for (const WorkerStatus& worker : status.workers) {
      const double started = worker.heartbeat.time_unix_seconds -
                             worker.heartbeat.uptime_seconds;
      if (!have_earliest || started < earliest) {
        earliest = started;
        have_earliest = true;
      }
    }
  }
  status.elapsed_seconds =
      have_earliest ? std::max(0.0, status.now_unix_seconds - earliest) : 0.0;
  status.throughput = obs::estimate_throughput(
      status.census.cells_done, status.total_cells, status.elapsed_seconds);

  // Outstanding claims: live when a non-dead, non-exited worker reports
  // being inside that unit, stale otherwise (a killed worker's footprint).
  const std::string claims_dir = spool + "/claims";
  if (util::fs::exists(claims_dir)) {
    for (const std::string& name : util::fs::list_directory(claims_dir)) {
      unsigned unit = 0;
      if (std::sscanf(name.c_str(), "unit_%u.claim", &unit) != 1) continue;
      if (claims_dir + "/" + name != claim_path(spool, unit)) continue;
      if (unit >= manifest.unit_count) continue;
      if (util::fs::exists(unit_path(spool, unit))) continue;  // published
      bool live = false;
      for (const WorkerStatus& worker : status.workers) {
        if (worker.state != WorkerState::kRunning &&
            worker.state != WorkerState::kStraggler) {
          continue;
        }
        if (worker.heartbeat.current_unit ==
            static_cast<std::int64_t>(unit)) {
          live = true;
          break;
        }
      }
      if (live) {
        ++status.claims_live;
      } else {
        ++status.claims_stale;
      }
    }
  }
  return status;
}

namespace {

std::string format_age(double seconds) {
  // Clock skew between fleet hosts can put a heartbeat in the reader's
  // future; the classifier clamps, and so does the rendered column.
  seconds = std::max(0.0, seconds);
  char buffer[32];
  if (seconds < 120.0) {
    std::snprintf(buffer, sizeof buffer, "%.1fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buffer, sizeof buffer, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.1fh", seconds / 3600.0);
  }
  return buffer;
}

std::string worker_position(const WorkerHeartbeat& hb) {
  if (hb.exited) return "exited";
  if (hb.current_unit < 0) return "idle";
  std::string out = "unit " + i64_string(hb.current_unit);
  if (hb.current_cell >= 0) out += " cell " + i64_string(hb.current_cell);
  return out;
}

std::string latency_bucket_label(std::uint32_t bucket) {
  if (bucket == 0) return "0 ms";
  if (bucket == obs::Log2Histogram::kOverflowBucket) {
    return ">= " + u64_string(obs::Log2Histogram::bucket_lower_bound(bucket)) +
           " ms";
  }
  return "[" + u64_string(obs::Log2Histogram::bucket_lower_bound(bucket)) +
         ", " +
         u64_string(obs::Log2Histogram::bucket_lower_bound(bucket + 1)) +
         ") ms";
}

}  // namespace

std::string render_farm_status(const FarmStatus& status) {
  std::size_t running = 0, stragglers = 0, dead = 0, exited = 0;
  for (const WorkerStatus& worker : status.workers) {
    switch (worker.state) {
      case WorkerState::kRunning: ++running; break;
      case WorkerState::kStraggler: ++stragglers; break;
      case WorkerState::kDead: ++dead; break;
      case WorkerState::kExited: ++exited; break;
    }
  }

  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "units   %u/%u done, %u claim(s) outstanding (%u live, %u "
                "stale)\n",
                status.census.units_done, status.census.unit_count,
                status.census.claims_outstanding, status.claims_live,
                status.claims_stale);
  out += line;
  std::snprintf(line, sizeof line,
                "cells   %llu/%llu (%.1f%%)  %.2f cells/s  %s\n",
                static_cast<unsigned long long>(status.census.cells_done),
                static_cast<unsigned long long>(status.total_cells),
                status.throughput.percent, status.throughput.rate,
                obs::format_eta(status.throughput,
                                status.census.complete()).c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "workers %zu (%zu running, %zu straggler, %zu dead, %zu "
                "exited)\n",
                status.workers.size(), running, stragglers, dead, exited);
  out += line;
  std::snprintf(line, sizeof line, "events  %zu merged",
                status.event_count);
  out += line;
  if (status.dropped_event_lines > 0) {
    std::snprintf(line, sizeof line, ", %zu partial line(s) skipped",
                  status.dropped_event_lines);
    out += line;
  }
  if (status.unreadable_heartbeats > 0) {
    std::snprintf(line, sizeof line, ", %zu unreadable heartbeat(s)",
                  status.unreadable_heartbeats);
    out += line;
  }
  out += '\n';
  std::snprintf(line, sizeof line, "state   %s\n",
                status.drained()
                    ? "drained"
                    : (status.census.complete() ? "complete, workers still up"
                                                : "in progress"));
  out += line;

  if (!status.workers.empty()) {
    TextTable table("fleet", {"worker", "state", "last seen", "units",
                              "cells", "cells/s", "MIPS", "maxrss MB", "at"});
    for (const WorkerStatus& worker : status.workers) {
      const WorkerHeartbeat& hb = worker.heartbeat;
      table.add_row({hb.worker_id, to_string(worker.state),
                     format_age(worker.age_seconds) + " ago",
                     std::to_string(hb.units_done), u64_string(hb.cells_done),
                     format_double(worker.cells_per_second, 2),
                     format_double(hb.mips, 2),
                     format_double(static_cast<double>(hb.rusage.maxrss_kb) /
                                       1024.0, 1),
                     worker_position(hb)});
    }
    out += '\n';
    out += table.render();
  }

  if (status.unit_latency_ms.total() > 0) {
    out += "\nunit latency (claim -> publish):\n";
    for (std::uint32_t b = 0; b < obs::Log2Histogram::kBuckets; ++b) {
      const std::uint64_t count = status.unit_latency_ms.bucket(b);
      if (count == 0) continue;
      std::snprintf(line, sizeof line, "  %-20s %llu\n",
                    latency_bucket_label(b).c_str(),
                    static_cast<unsigned long long>(count));
      out += line;
    }
  }
  return out;
}

std::string farm_status_to_ndjson(const FarmStatus& status) {
  std::size_t running = 0, stragglers = 0, dead = 0, exited = 0;
  for (const WorkerStatus& worker : status.workers) {
    switch (worker.state) {
      case WorkerState::kRunning: ++running; break;
      case WorkerState::kStraggler: ++stragglers; break;
      case WorkerState::kDead: ++dead; break;
      case WorkerState::kExited: ++exited; break;
    }
  }
  std::string out = "{\"type\":\"farm\"";
  out += ",\"schema\":" + std::to_string(kStatusSchemaVersion);
  out += ",\"unit_count\":" + std::to_string(status.census.unit_count);
  out += ",\"units_done\":" + std::to_string(status.census.units_done);
  out += ",\"total_cells\":" + u64_string(status.total_cells);
  out += ",\"cells_done\":" + u64_string(status.census.cells_done);
  out += ",\"claims_outstanding\":" +
         std::to_string(status.census.claims_outstanding);
  out += ",\"claims_live\":" + std::to_string(status.claims_live);
  out += ",\"claims_stale\":" + std::to_string(status.claims_stale);
  out += ",\"workers\":" + std::to_string(status.workers.size());
  out += ",\"running\":" + std::to_string(running);
  out += ",\"straggler\":" + std::to_string(stragglers);
  out += ",\"dead\":" + std::to_string(dead);
  out += ",\"exited\":" + std::to_string(exited);
  out += ",\"percent\":" + brief_double(status.throughput.percent);
  out += ",\"cells_per_second\":" + brief_double(status.throughput.rate);
  out += ",\"eta_seconds\":" + brief_double(status.throughput.eta_seconds);
  out += ",\"elapsed_seconds\":" + brief_double(status.elapsed_seconds);
  out += ",\"events\":" + std::to_string(status.event_count);
  out += ",\"dropped_event_lines\":" +
         std::to_string(status.dropped_event_lines);
  out += ",\"unreadable_heartbeats\":" +
         std::to_string(status.unreadable_heartbeats);
  out += std::string(",\"complete\":") +
         (status.census.complete() ? "true" : "false");
  out += std::string(",\"drained\":") + (status.drained() ? "true" : "false");
  out += "}\n";
  for (const WorkerStatus& worker : status.workers) {
    const WorkerHeartbeat& hb = worker.heartbeat;
    out += "{\"type\":\"worker\",\"schema\":" +
           std::to_string(kStatusSchemaVersion);
    out += ",\"worker\":\"" + util::json_escape(hb.worker_id) + "\"";
    out += ",\"state\":\"" + std::string(to_string(worker.state)) + "\"";
    out += ",\"pid\":" + i64_string(hb.pid);
    out += ",\"seq\":" + u64_string(hb.seq);
    out += ",\"age_seconds\":" + brief_double(worker.age_seconds);
    out += ",\"units_done\":" + std::to_string(hb.units_done);
    out += ",\"cells_done\":" + u64_string(hb.cells_done);
    out += ",\"current_unit\":" + i64_string(hb.current_unit);
    out += ",\"current_cell\":" + i64_string(hb.current_cell);
    out += ",\"cells_per_second\":" + brief_double(worker.cells_per_second);
    out += ",\"mips\":" + brief_double(hb.mips);
    out += ",\"maxrss_kb\":" + u64_string(hb.rusage.maxrss_kb);
    out += std::string(",\"exited\":") + (hb.exited ? "true" : "false");
    out += "}\n";
  }
  return out;
}

FarmStatus farm_status_from_ndjson(const std::string& text) {
  FarmStatus status;
  bool saw_farm = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    util::JsonValue record = util::JsonValue::parse(line);
    const int schema =
        static_cast<int>(record.get("schema").as_double(1.0));
    if (schema > kStatusSchemaVersion) {
      throw std::runtime_error(
          "status schema " + std::to_string(schema) +
          " is newer than this build understands (" +
          std::to_string(kStatusSchemaVersion) + ")");
    }
    const std::string& type = record.get("type").as_string();
    if (type == "farm") {
      saw_farm = true;
      status.schema = schema;
      status.census.unit_count =
          static_cast<std::uint32_t>(record.get("unit_count").as_double());
      status.census.units_done =
          static_cast<std::uint32_t>(record.get("units_done").as_double());
      status.census.cells_done =
          static_cast<std::uint64_t>(record.get("cells_done").as_double());
      status.census.claims_outstanding = static_cast<std::uint32_t>(
          record.get("claims_outstanding").as_double());
      status.total_cells =
          static_cast<std::uint64_t>(record.get("total_cells").as_double());
      status.claims_live =
          static_cast<std::uint32_t>(record.get("claims_live").as_double());
      status.claims_stale =
          static_cast<std::uint32_t>(record.get("claims_stale").as_double());
      status.event_count =
          static_cast<std::size_t>(record.get("events").as_double());
      status.dropped_event_lines = static_cast<std::size_t>(
          record.get("dropped_event_lines").as_double());
      status.unreadable_heartbeats = static_cast<std::size_t>(
          record.get("unreadable_heartbeats").as_double());
      status.elapsed_seconds = record.get("elapsed_seconds").as_double();
      status.throughput.percent = record.get("percent").as_double(100.0);
      status.throughput.rate = record.get("cells_per_second").as_double();
      status.throughput.eta_seconds =
          record.get("eta_seconds").as_double(-1.0);
    } else if (type == "worker") {
      WorkerStatus worker;
      worker.state =
          worker_state_by_name(record.get("state").as_string("running"));
      // Defensive double-clamp: a skewed remote producer (schema 1) could
      // have written a negative age.
      worker.age_seconds = std::max(0.0, record.get("age_seconds").as_double());
      worker.cells_per_second = record.get("cells_per_second").as_double();
      WorkerHeartbeat& hb = worker.heartbeat;
      hb.worker_id = record.get("worker").as_string();
      hb.pid = static_cast<std::int64_t>(record.get("pid").as_double());
      hb.seq = static_cast<std::uint64_t>(record.get("seq").as_double());
      hb.units_done =
          static_cast<std::uint32_t>(record.get("units_done").as_double());
      hb.cells_done =
          static_cast<std::uint64_t>(record.get("cells_done").as_double());
      hb.current_unit =
          static_cast<std::int64_t>(record.get("current_unit").as_double(-1.0));
      hb.current_cell =
          static_cast<std::int64_t>(record.get("current_cell").as_double(-1.0));
      hb.mips = record.get("mips").as_double();
      hb.rusage.maxrss_kb =
          static_cast<std::uint64_t>(record.get("maxrss_kb").as_double());
      hb.exited = record.get("exited").as_bool();
      status.workers.push_back(std::move(worker));
    }
  }
  if (!saw_farm) {
    throw std::runtime_error(
        "status NDJSON carries no {\"type\":\"farm\"} record");
  }
  return status;
}

std::string fleet_unit_spans_trace(const std::vector<FarmEvent>& events) {
  // One tid per worker id, in sorted order, so the timeline layout is a
  // pure function of the event set.
  std::vector<std::string> workers;
  for (const FarmEvent& event : events) workers.push_back(event.worker_id);
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  const auto tid_of = [&workers](const std::string& id) {
    return static_cast<std::uint64_t>(
        std::lower_bound(workers.begin(), workers.end(), id) -
        workers.begin());
  };

  std::string out = "[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"farm fleet\"}}";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           u64_string(i) + ",\"args\":{\"name\":\"" +
           util::json_escape(workers[i]) + "\"}}";
  }
  char number[48];
  for (const FarmEvent& event : events) {
    const std::uint64_t tid = tid_of(event.worker_id);
    if (event.type == FarmEventType::kPublish) {
      // The unit span runs from claim to publish on the worker's row.
      out += ",\n{\"name\":\"unit " + i64_string(event.unit) +
             "\",\"cat\":\"farm\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
             u64_string(tid) + ",\"ts\":";
      std::snprintf(number, sizeof number, "%.3f",
                    (event.time_unix_seconds - event.duration_seconds) * 1e6);
      out += number;
      out += ",\"dur\":";
      std::snprintf(number, sizeof number, "%.3f",
                    event.duration_seconds * 1e6);
      out += number;
      out += ",\"args\":{\"worker\":\"" + util::json_escape(event.worker_id) +
             "\",\"unit\":" + i64_string(event.unit) +
             ",\"cells\":" + u64_string(event.cells) + "}}";
    } else if (event.type == FarmEventType::kStaleClear ||
               event.type == FarmEventType::kClaimConflict ||
               event.type == FarmEventType::kExit) {
      out += ",\n{\"name\":\"";
      out += to_string(event.type);
      out += "\",\"cat\":\"farm\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
             "\"tid\":" +
             u64_string(tid) + ",\"ts\":";
      std::snprintf(number, sizeof number, "%.3f",
                    event.time_unix_seconds * 1e6);
      out += number;
      out += ",\"args\":{\"worker\":\"" + util::json_escape(event.worker_id) +
             "\",\"unit\":" + i64_string(event.unit) + "}}";
    }
  }
  out += "\n]\n";
  return out;
}

std::string merge_fleet_trace(const std::string& spool) {
  std::vector<std::string> traces;
  traces.push_back(fleet_unit_spans_trace(read_farm_events(spool)));
  const std::string dir = worker_trace_dir(spool);
  if (util::fs::exists(dir)) {
    for (const std::string& name : util::fs::list_directory(dir)) {
      if (name.rfind("worker-", 0) != 0) continue;
      if (name.size() < 5 || name.substr(name.size() - 5) != ".json") {
        continue;
      }
      traces.push_back(util::fs::read_text_file(dir + "/" + name));
    }
  }
  return obs::prof::merge_chrome_traces(traces);
}

}  // namespace icr::sim::farm
