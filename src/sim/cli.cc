#include "src/sim/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace icr::sim::cli {

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

void unknown_flag(const char* program, const char* arg) {
  std::fprintf(stderr, "%s: unknown flag '%s' (run with --help for the flag "
                       "list)\n",
               program, arg);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) items.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

core::Scheme scheme_by_name(const std::string& name) {
  for (core::Scheme s : core::Scheme::all_paper_schemes()) {
    if (s.name == name) return s;
  }
  if (name == "BaseECC-spec") return core::Scheme::BaseECCSpeculative();
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(2);
}

trace::App app_by_name(const std::string& name) {
  for (const trace::App a : trace::all_apps()) {
    if (name == trace::to_string(a)) return a;
  }
  std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
  std::exit(2);
}

fault::FaultModel fault_by_name(const std::string& name) {
  using M = fault::FaultModel;
  for (const M m : {M::kRandom, M::kAdjacent, M::kColumn, M::kDirect}) {
    if (name == fault::to_string(m)) return m;
  }
  std::fprintf(stderr, "unknown fault model '%s'\n", name.c_str());
  std::exit(2);
}

core::ReplicaVictimPolicy victim_by_name(const std::string& name) {
  using P = core::ReplicaVictimPolicy;
  for (const P p :
       {P::kDeadOnly, P::kDeadFirst, P::kReplicaFirst, P::kReplicaOnly}) {
    if (name == core::to_string(p)) return p;
  }
  std::fprintf(stderr, "unknown victim policy '%s'\n", name.c_str());
  std::exit(2);
}

SampleMode sample_mode_by_name(const std::string& name) {
  for (const SampleMode m : {SampleMode::kSystematic, SampleMode::kRandom}) {
    if (name == to_string(m)) return m;
  }
  std::fprintf(stderr, "unknown sample mode '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace icr::sim::cli
