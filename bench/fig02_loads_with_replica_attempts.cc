// Fig. 2: loads with replica for single vs multiple replication attempts,
// ICR-P-PS(S). Expected shape: negligible improvement from multi-attempt —
// the hot lines that matter were replicated even with a single attempt.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  // Same §5.1 setting as Fig. 1 (see fig01 for the leave-replicas note).
  const core::Scheme base =
      core::Scheme::IcrPPS_S().with_leave_replicas(true);
  bench::run_and_print(
      "Fig. 2", "Loads with replica, single vs multiple attempts, ICR-P-PS(S)",
      {
          {"single(N/2)", base.with_replication(bench::single_attempt())},
          {"multi(N/2,N/4)", base.with_replication(bench::multi_attempt())},
      },
      [](const sim::RunResult& r) {
        return r.dl1.loads_with_replica_fraction();
      },
      "loads with replica (fraction of read hits)");
  return 0;
}
