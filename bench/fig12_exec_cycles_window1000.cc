// Fig. 12: normalized execution cycles with a 1000-cycle decay window and
// dead-first victim selection. Expected shape (paper §5.4): ICR-P-PS(S)
// ~2.4% and ICR-ECC-PS(S) ~10% over BaseP, vs ~31% for BaseECC —
// ICR-ECC-PS(S) beating BaseECC by ~17%.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  bench::run_and_print_normalized(
      "Fig. 12",
      "Normalized execution cycles, decay window 1000 cycles, dead-first",
      {
          {"BaseP", core::Scheme::BaseP()},
          {"BaseECC", core::Scheme::BaseECC()},
          {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
          {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
      },
      [](const sim::RunResult& r) { return static_cast<double>(r.cycles); },
      "execution cycles");
  return 0;
}
