// Fig. 3: replication ability when trying to create one vs two replicas,
// ICR-P-PS(S). Columns: the single-replica ability, the fraction of
// opportunities ending with >=1 replica, and with >=2 replicas (i.e. three
// copies resident — paper: ~12% of the time on average).
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme base = core::Scheme::IcrPPS_S();
  const core::Scheme one = base.with_replication(bench::single_attempt());
  const core::Scheme two = base.with_replication(bench::two_replicas());

  bench::print_header(
      "Fig. 3",
      "Replication ability, one vs two replicas, ICR-P-PS(S); replica 1 at "
      "Distance-N/2, replica 2 at Distance-N/4");

  const auto apps = trace::all_apps();
  const auto m =
      sim::run_matrix({{"one", one}, {"two", two}}, apps);

  TextTable t("Fig. 3 — multi-replica ability",
              {"benchmark", "1-replica ability", "created >=1 (2-cfg)",
               "created 2 (2-cfg)"});
  double s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double v1 = m[0][a].dl1.replication_ability();
    const double v2 = m[1][a].dl1.multi_replica_fraction(false);
    const double v3 = m[1][a].dl1.multi_replica_fraction(true);
    s1 += v1;
    s2 += v2;
    s3 += v3;
    t.add_numeric_row(trace::to_string(apps[a]), {v1, v2, v3});
  }
  const double n = static_cast<double>(apps.size());
  t.add_numeric_row("average", {s1 / n, s2 / n, s3 / n});
  t.print();
  return 0;
}
