// Fig. 16: write-through BaseP (8-entry coalescing write buffer) vs
// write-back ICR-P-PS(S), normalized to ICR-P-PS(S).
//   (a) execution cycles — paper: write-through ~5.7% slower on average;
//   (b) L1+L2 dynamic energy — paper: write-through costs more than 2x.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme icr_scheme =
      core::Scheme::IcrPPS_S()
          .with_decay_window(1000)
          .with_victim_policy(core::ReplicaVictimPolicy::kDeadFirst);
  const core::Scheme wt = core::Scheme::BaseP().with_write_through(8);

  bench::print_header(
      "Fig. 16",
      "Write-through BaseP (8-entry coalescing buffer) normalized to "
      "write-back ICR-P-PS(S)");

  const auto apps = trace::all_apps();
  const auto m = sim::run_matrix(
      {{"ICR-P-PS(S) wb", icr_scheme}, {"BaseP wt", wt}}, apps);

  TextTable t("Fig. 16 — BaseP(write-through) / ICR-P-PS(S)(write-back)",
              {"benchmark", "(a) norm. cycles", "(b) norm. L1+L2 energy"});
  double sc = 0, se = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double c = sim::normalized_cycles(m[1][a], m[0][a]);
    const double e = sim::normalized_energy(m[1][a], m[0][a]);
    sc += c;
    se += e;
    t.add_numeric_row(trace::to_string(apps[a]), {c, e});
  }
  const double n = static_cast<double>(apps.size());
  t.add_numeric_row("average", {sc / n, se / n});
  t.print();

  std::printf("\nValues > 1 mean the write-through cache is slower / burns "
              "more energy than ICR-P-PS(S).\n");
  return 0;
}
