// Fig. 7: loads with replica for ICR-*(LS) vs ICR-*(S). Expected shape
// (paper §5.2): over 65% of read hits find a replica with S, over 90% with
// LS — mcf approaching complete duplication.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::run_and_print(
      "Fig. 7", "Loads with replica, ICR-*(LS) vs ICR-*(S)",
      {
          {"ICR-*(S)", core::Scheme::IcrPPS_S()},
          {"ICR-*(LS)", core::Scheme::IcrPPS_LS()},
      },
      [](const sim::RunResult& r) {
        return r.dl1.loads_with_replica_fraction();
      },
      "loads with replica (fraction of read hits)");
  return 0;
}
