// Fig. 4: dL1 miss rates when creating one vs two replicas, ICR-P-PS(S).
// Expected shape: two replicas evict more useful blocks and worsen miss
// rates; mesa suffers most (its working set barely fits the cache).
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme base = core::Scheme::IcrPPS_S();
  bench::run_and_print(
      "Fig. 4", "dL1 miss rate, one vs two replicas, ICR-P-PS(S)",
      {
          {"one replica", base.with_replication(bench::single_attempt())},
          {"two replicas", base.with_replication(bench::two_replicas())},
      },
      [](const sim::RunResult& r) { return r.dl1.miss_rate(); },
      "dL1 miss rate", 4);
  return 0;
}
