// sampled_vs_full — wall-time and accuracy demo for checkpointed warmup +
// interval sampling (docs/SAMPLING.md). Not a paper figure: it runs the
// same (schemes x apps) campaign twice — full detail, then 5%-coverage
// sampling — and reports the speedup plus the worst per-metric relative
// error of the estimates. This is the ISSUE 5 acceptance demo: the sampled
// campaign must clear 5x on the same instruction budget.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_common.h"
#include "src/sim/results_io.h"
#include "src/util/table.h"

using namespace icr;

namespace {

double relative_error(double estimate, double reference) {
  if (reference == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - reference) / std::abs(reference);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_header(
      "sampled_vs_full",
      "full-detail campaign vs 5%-coverage warmup+interval sampling");

  sim::CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
  spec.apps = {trace::App::kGzip, trace::App::kVpr, trace::App::kMcf,
               trace::App::kVortex};
  spec.instructions = sim::default_instruction_count();

  const sim::CampaignRunner runner;
  const auto t0 = std::chrono::steady_clock::now();
  const sim::CampaignResult full = runner.run(spec);
  const auto t1 = std::chrono::steady_clock::now();

  // 5% detailed coverage: warmup 5% of the budget (fast-forwarded), then 10
  // systematically placed windows of 0.5% each. Thin-window estimates trade
  // a little accuracy (see the error table) for the headline speedup.
  spec.sampling.warmup_instructions = spec.instructions / 20;
  spec.sampling.windows = 10;
  spec.sampling.window_width = spec.instructions / 200;
  const sim::CampaignResult sampled = runner.run(spec);
  const auto t2 = std::chrono::steady_clock::now();

  const double full_seconds = std::chrono::duration<double>(t1 - t0).count();
  const double sampled_seconds =
      std::chrono::duration<double>(t2 - t1).count();

  // Worst relative error per headline metric across the grid.
  struct Metric {
    const char* name;
    double (*value)(const sim::RunResult&);
  };
  const std::vector<Metric> metrics = {
      {"dL1 miss rate",
       [](const sim::RunResult& r) { return r.dl1.miss_rate(); }},
      {"replication ability",
       [](const sim::RunResult& r) { return r.dl1.replication_ability(); }},
      {"loads with replica",
       [](const sim::RunResult& r) {
         return r.dl1.loads_with_replica_fraction();
       }},
      {"execution cycles",
       [](const sim::RunResult& r) { return static_cast<double>(r.cycles); }},
      {"energy (nJ)",
       [](const sim::RunResult& r) { return r.energy.total_nj(); }},
  };
  TextTable table("worst relative error of sampled estimates",
                  {"metric", "max |error|"});
  for (const Metric& metric : metrics) {
    double worst = 0.0;
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
      worst = std::max(worst,
                       relative_error(metric.value(sampled.cells[i].result),
                                      metric.value(full.cells[i].result)));
    }
    char cell[32];
    std::snprintf(cell, sizeof cell, "%.2f%%", 100.0 * worst);
    table.add_row({metric.name, cell});
    bench::record_metric(std::string("max_error.") + metric.name, worst,
                         bench::Better::kLower);
  }
  table.print();

  const double speedup =
      sampled_seconds > 0.0 ? full_seconds / sampled_seconds : 0.0;
  double coverage = 0.0;
  for (const sim::CellResult& cell : sampled.cells) {
    coverage += cell.sampling.coverage();
  }
  coverage /= static_cast<double>(sampled.cells.empty()
                                      ? 1
                                      : sampled.cells.size());
  std::printf("full: %.2fs   sampled: %.2fs   speedup: %.1fx at %.1f%% "
              "detailed coverage\n",
              full_seconds, sampled_seconds, speedup, 100.0 * coverage);
  bench::record_metric("speedup", speedup, bench::Better::kHigher);
  bench::record_metric("coverage", coverage);
  return 0;
}
