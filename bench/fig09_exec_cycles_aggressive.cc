// Fig. 9: normalized execution cycles for all ten schemes (aggressive dead
// block prediction, dead-only victims, replicas evicted with the primary).
// Expected shape (paper §5.2): BaseECC ~30% over BaseP; every ICR-*-PP
// scheme comparable to BaseECC (2-cycle hits dominate); ICR-P-PS(S) only a
// few percent over BaseP; ICR-ECC-PS(S) between, clearly better than
// BaseECC.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  std::vector<sim::SchemeVariant> variants;
  for (const core::Scheme& s : core::Scheme::all_paper_schemes()) {
    variants.push_back({s.name, s});
  }
  bench::run_and_print_normalized(
      "Fig. 9",
      "Normalized execution cycles, all 10 schemes, aggressive dead-block "
      "prediction",
      variants,
      [](const sim::RunResult& r) { return static_cast<double>(r.cycles); },
      "execution cycles");
  return 0;
}
