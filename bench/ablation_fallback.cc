// Ablation (§3.1 "How aggressively should we replicate?"): fallback site
// search — give-up vs explicit multi-attempt vs the power-2 ladder — in the
// replica-accumulating §5.1 configuration where site conflicts actually
// occur.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  core::ReplicationConfig power2;
  power2.fallback = core::FallbackStrategy::kPower2;
  power2.max_attempts = 4;

  const core::Scheme base =
      core::Scheme::IcrPPS_S().with_leave_replicas(true);
  const std::vector<sim::SchemeVariant> variants = {
      {"give-up", base.with_replication(bench::single_attempt())},
      {"multi(N/2,N/4)", base.with_replication(bench::multi_attempt())},
      {"power-2(x4)", base.with_replication(power2)},
  };

  bench::run_and_print(
      "Ablation B", "Fallback strategy vs replication ability "
                    "(ICR-P-PS(S), replicas left resident)",
      variants,
      [](const sim::RunResult& r) { return r.dl1.replication_ability(); },
      "replication ability");

  bench::run_and_print(
      "Ablation B", "Fallback strategy vs loads-with-replica",
      variants,
      [](const sim::RunResult& r) {
        return r.dl1.loads_with_replica_fraction();
      },
      "loads with replica");
  return 0;
}
