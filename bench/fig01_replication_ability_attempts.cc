// Fig. 1: replication ability for single-attempt (Distance-N/2) vs
// multiple-attempt (Distance-N/2 then N/4) site search, ICR-P-PS(S) with
// aggressive dead-block prediction and dead-only victim selection.
// Expected shape: multi-attempt >= single-attempt for every benchmark.
//
// Replicas are left resident when their primary is evicted here: the paper
// introduces replica-with-primary eviction only for the §5.2 results ("In
// these results, when the primary copy is evicted..."), so the §5.1
// experiments accumulate replicas — which is what crowds the dead-only
// victim sites and makes the fallback attempt matter.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme base =
      core::Scheme::IcrPPS_S().with_leave_replicas(true);
  bench::run_and_print(
      "Fig. 1", "Replication ability, single vs multiple attempts, ICR-P-PS(S)",
      {
          {"single(N/2)", base.with_replication(bench::single_attempt())},
          {"multi(N/2,N/4)", base.with_replication(bench::multi_attempt())},
      },
      [](const sim::RunResult& r) { return r.dl1.replication_ability(); },
      "replication ability");
  return 0;
}
