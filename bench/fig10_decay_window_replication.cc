// Fig. 10: replication ability and loads-with-replica vs decay window size
// (vpr, ICR-P-PS(S), dead-first). Expected shape: ability falls as the
// window grows (fewer dead candidates), but loads-with-replica barely moves
// — the few hot replicas that matter are created regardless.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Fig. 10",
      "Replication ability & loads with replica vs decay window (vpr), "
      "ICR-P-PS(S), dead-first victims");

  const std::uint64_t windows[] = {0, 500, 1000, 5000, 10000, 100000};
  TextTable t("Fig. 10 — vpr decay-window sweep",
              {"decay window", "replication ability", "loads with replica"});
  for (const std::uint64_t w : windows) {
    const core::Scheme scheme =
        core::Scheme::IcrPPS_S()
            .with_decay_window(w)
            .with_victim_policy(core::ReplicaVictimPolicy::kDeadFirst);
    const sim::RunResult r = sim::run_one(trace::App::kVpr, scheme);
    t.add_numeric_row(std::to_string(w),
                      {r.dl1.replication_ability(),
                       r.dl1.loads_with_replica_fraction()});
  }
  t.print();
  return 0;
}
