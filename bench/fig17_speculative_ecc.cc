// Fig. 17: BaseECC with speculative 1-cycle loads (background ECC checks)
// normalized to the performance-optimized ICR-P-PS(S) (replicas left in
// place).
//   (a) execution cycles — paper: speculative BaseECC still ~2.5% slower on
//       average, ~31% on mcf;
//   (b) L1+L2 energy at parity:ECC = 15%:30% of an L1 access — roughly even;
//   (c) L1+L2 energy at parity:ECC = 10%:30% — speculative BaseECC ~3%
//       more expensive.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme icr_perf =
      core::Scheme::IcrPPS_S()
          .with_decay_window(1000)
          .with_victim_policy(core::ReplicaVictimPolicy::kDeadFirst)
          .with_leave_replicas(true);
  const core::Scheme spec_ecc = core::Scheme::BaseECCSpeculative();

  bench::print_header(
      "Fig. 17",
      "Speculative-load BaseECC normalized to performance-optimized "
      "ICR-P-PS(S) (replicas left in place)");

  const auto apps = trace::all_apps();

  auto energy_with = [&](const sim::RunResult& r, double parity_frac,
                         double ecc_frac) {
    energy::EnergyParams params;
    params.parity_fraction = parity_frac;
    params.ecc_fraction = ecc_frac;
    return energy::EnergyModel(params).evaluate(r.energy_events).total_nj();
  };

  const auto m = sim::run_matrix(
      {{"ICR-P-PS(S) perf", icr_perf}, {"BaseECC spec", spec_ecc}}, apps);

  TextTable t("Fig. 17 — BaseECC(speculative) / ICR-P-PS(S)(perf)",
              {"benchmark", "(a) norm. cycles", "(b) energy 15:30",
               "(c) energy 10:30"});
  double sa = 0, sb = 0, sc = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double cyc = sim::normalized_cycles(m[1][a], m[0][a]);
    const double e_b = energy_with(m[1][a], 0.15, 0.30) /
                       energy_with(m[0][a], 0.15, 0.30);
    const double e_c = energy_with(m[1][a], 0.10, 0.30) /
                       energy_with(m[0][a], 0.10, 0.30);
    sa += cyc;
    sb += e_b;
    sc += e_c;
    t.add_numeric_row(trace::to_string(apps[a]), {cyc, e_b, e_c});
  }
  const double n = static_cast<double>(apps.size());
  t.add_numeric_row("average", {sa / n, sb / n, sc / n});
  t.print();

  std::printf("\nValues > 1 mean speculative BaseECC is slower / burns more "
              "energy than performance-optimized ICR-P-PS(S).\n");
  return 0;
}
