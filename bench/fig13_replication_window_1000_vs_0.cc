// Fig. 13: replication ability and loads-with-replica with decay windows of
// 1000 vs 0 cycles, ICR-P-PS(S). Expected shape: ability drops with the
// 1000-cycle window but loads-with-replica is nearly unchanged — so the
// relaxed predictor does not compromise reliability coverage.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Fig. 13",
      "Replication ability & loads with replica: window 1000 vs 0, "
      "ICR-P-PS(S), dead-first");

  const auto apps = trace::all_apps();
  auto scheme = [](std::uint64_t w) {
    return core::Scheme::IcrPPS_S().with_decay_window(w).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  const auto m = sim::run_matrix(
      {{"w0", scheme(0)}, {"w1000", scheme(1000)}}, apps);

  TextTable t("Fig. 13 — decay window 1000 vs 0",
              {"benchmark", "ability w=0", "ability w=1000", "lwr w=0",
               "lwr w=1000"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    t.add_numeric_row(trace::to_string(apps[a]),
                      {m[0][a].dl1.replication_ability(),
                       m[1][a].dl1.replication_ability(),
                       m[0][a].dl1.loads_with_replica_fraction(),
                       m[1][a].dl1.loads_with_replica_fraction()});
  }
  t.print();
  return 0;
}
