// Fig. 11: normalized execution cycles vs decay window size (vpr) for
// ICR-P-PS(S) and ICR-ECC-PS(S), normalized to BaseP. Expected shape: both
// schemes improve as the window grows (fewer useful blocks displaced); the
// paper reads <4% over BaseP at a 1000-cycle window for ICR-P-PS(S) and
// ~1.7% at 10000 cycles.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Fig. 11",
      "Normalized execution cycles vs decay window (vpr), dead-first");

  const sim::RunResult base = sim::run_one(trace::App::kVpr,
                                           core::Scheme::BaseP());
  const std::uint64_t windows[] = {0, 500, 1000, 5000, 10000, 100000};
  TextTable t("Fig. 11 — vpr, cycles normalized to BaseP",
              {"decay window", "ICR-P-PS(S)", "ICR-ECC-PS(S)"});
  for (const std::uint64_t w : windows) {
    const auto p = sim::run_one(
        trace::App::kVpr,
        core::Scheme::IcrPPS_S().with_decay_window(w).with_victim_policy(
            core::ReplicaVictimPolicy::kDeadFirst));
    const auto e = sim::run_one(
        trace::App::kVpr,
        core::Scheme::IcrEccPS_S().with_decay_window(w).with_victim_policy(
            core::ReplicaVictimPolicy::kDeadFirst));
    t.add_numeric_row(std::to_string(w), {sim::normalized_cycles(p, base),
                                          sim::normalized_cycles(e, base)});
  }
  t.print();
  return 0;
}
