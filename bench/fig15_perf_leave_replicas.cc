// Fig. 15: normalized execution cycles when replicas are LEFT in the dL1 on
// primary eviction and can service later primary misses at +1 cycle
// (§5.6). Expected shape: ICR-P-PS(S) and ICR-ECC-PS(S) match BaseP nearly
// everywhere and beat it on mcf/vpr (and to a smaller extent gcc, gzip,
// vortex) — replication now *improves* performance.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  auto perf = [](core::Scheme s) {
    return s.with_decay_window(1000)
        .with_victim_policy(core::ReplicaVictimPolicy::kDeadFirst)
        .with_leave_replicas(true);
  };
  bench::run_and_print_normalized(
      "Fig. 15",
      "Normalized execution cycles with replicas left in dL1 on primary "
      "eviction (ICR-*-PS(S), window 1000, dead-first)",
      {
          {"BaseP", core::Scheme::BaseP()},
          {"BaseECC", core::Scheme::BaseECC()},
          {"ICR-P-PS(S)+leave", perf(core::Scheme::IcrPPS_S())},
          {"ICR-ECC-PS(S)+leave", perf(core::Scheme::IcrEccPS_S())},
      },
      [](const sim::RunResult& r) { return static_cast<double>(r.cycles); },
      "execution cycles");
  return 0;
}
