// Ablation (§3.1 "How do we place a replica in a set?"): the four replica
// victim policies under a 1000-cycle decay window. dead-only biases
// reliability (never sacrifices a replica), replica-first biases
// performance; dead-first is the paper's §5.2+ compromise.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  auto with_policy = [](core::ReplicaVictimPolicy p) {
    return core::Scheme::IcrPPS_S().with_decay_window(1000).with_victim_policy(
        p);
  };
  const std::vector<sim::SchemeVariant> variants = {
      {"dead-only", with_policy(core::ReplicaVictimPolicy::kDeadOnly)},
      {"dead-first", with_policy(core::ReplicaVictimPolicy::kDeadFirst)},
      {"replica-first", with_policy(core::ReplicaVictimPolicy::kReplicaFirst)},
      {"replica-only", with_policy(core::ReplicaVictimPolicy::kReplicaOnly)},
  };

  bench::run_and_print(
      "Ablation A", "Replica victim policy vs loads-with-replica "
                    "(ICR-P-PS(S), window 1000)",
      variants,
      [](const sim::RunResult& r) {
        return r.dl1.loads_with_replica_fraction();
      },
      "loads with replica");

  bench::run_and_print(
      "Ablation A", "Replica victim policy vs dL1 miss rate "
                    "(ICR-P-PS(S), window 1000)",
      variants,
      [](const sim::RunResult& r) { return r.dl1.miss_rate(); },
      "dL1 miss rate", 4);
  return 0;
}
