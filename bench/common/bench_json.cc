#include "bench/common/bench_json.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "src/util/json.h"
#include "src/util/table.h"

namespace icr::bench {

namespace {

std::string format_value(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

Better better_from_string(const std::string& text) {
  if (text == "lower") return Better::kLower;
  if (text == "higher") return Better::kHigher;
  if (text == "none") return Better::kNone;
  throw std::runtime_error("bench json: unknown 'better' direction '" + text +
                           "'");
}

}  // namespace

const char* to_string(Better better) noexcept {
  switch (better) {
    case Better::kLower: return "lower";
    case Better::kHigher: return "higher";
    case Better::kNone: return "none";
  }
  return "none";
}

const BenchMetric* BenchJson::find(const std::string& name) const {
  for (const BenchMetric& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string to_json(const BenchJson& doc) {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchJsonSchema) + "\",\n";
  out += "  \"bench\": \"" + util::json_escape(doc.bench) + "\",\n";
  out += "  \"git_sha\": \"" + util::json_escape(doc.git_sha) + "\",\n";
  out += "  \"config_hash\": \"" + util::json_escape(doc.config_hash) +
         "\",\n";
  out += "  \"wall_seconds\": " + format_value(doc.wall_seconds) + ",\n";
  out += "  \"mips\": " + format_value(doc.mips) + ",\n";
  out += "  \"metrics\": [\n";
  for (std::size_t i = 0; i < doc.metrics.size(); ++i) {
    const BenchMetric& metric = doc.metrics[i];
    out += "    {\"name\": \"" + util::json_escape(metric.name) +
           "\", \"value\": " + format_value(metric.value) +
           ", \"better\": \"" + to_string(metric.better) + "\"";
    if (metric.noise > 0.0) {
      out += ", \"noise\": " + format_value(metric.noise);
    }
    out += "}";
    if (i + 1 != doc.metrics.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

BenchJson from_json_text(const std::string& text) {
  const util::JsonValue root = util::JsonValue::parse(text);
  if (!root.is_object()) {
    throw std::runtime_error("bench json: top-level object expected");
  }
  const std::string schema = root.get("schema").as_string();
  if (schema != kBenchJsonSchema) {
    throw std::runtime_error("bench json: schema '" + schema +
                             "' is not '" + kBenchJsonSchema + "'");
  }
  BenchJson doc;
  doc.bench = root.get("bench").as_string();
  if (const util::JsonValue* sha = root.find("git_sha")) {
    doc.git_sha = sha->as_string();
  }
  if (const util::JsonValue* hash = root.find("config_hash")) {
    doc.config_hash = hash->as_string();
  }
  if (const util::JsonValue* wall = root.find("wall_seconds")) {
    doc.wall_seconds = wall->as_double();
  }
  if (const util::JsonValue* mips = root.find("mips")) {
    doc.mips = mips->as_double();
  }
  for (const util::JsonValue& entry : root.get("metrics").items()) {
    BenchMetric metric;
    metric.name = entry.get("name").as_string();
    metric.value = entry.get("value").as_double();
    if (const util::JsonValue* better = entry.find("better")) {
      metric.better = better_from_string(better->as_string());
    }
    if (const util::JsonValue* noise = entry.find("noise")) {
      metric.noise = noise->as_double();
    }
    doc.metrics.push_back(std::move(metric));
  }
  return doc;
}

bool CompareResult::regressed() const {
  if (!missing_in_current.empty()) return true;
  for (const MetricDelta& delta : deltas) {
    if (delta.regressed) return true;
  }
  return false;
}

CompareResult compare(const BenchJson& base, const BenchJson& current,
                      const CompareOptions& options) {
  CompareResult result;
  for (const BenchMetric& b : base.metrics) {
    const BenchMetric* c = current.find(b.name);
    if (c == nullptr) {
      result.missing_in_current.push_back(b.name);
      continue;
    }
    MetricDelta delta;
    delta.name = b.name;
    delta.base = b.value;
    delta.current = c->value;
    delta.better = b.better;
    // The baseline's noise bound wins: the checked-in file is the contract.
    delta.threshold =
        b.noise > 0.0 ? b.noise : options.default_threshold;
    if (b.value != 0.0) {
      delta.rel_change = (c->value - b.value) / std::fabs(b.value);
    } else if (c->value != 0.0) {
      delta.rel_change = std::numeric_limits<double>::infinity();
    }
    if (b.better == Better::kLower) {
      delta.regressed = delta.rel_change > delta.threshold;
      delta.improved = delta.rel_change < -delta.threshold;
    } else if (b.better == Better::kHigher) {
      delta.regressed = delta.rel_change < -delta.threshold;
      delta.improved = delta.rel_change > delta.threshold;
    }
    result.deltas.push_back(delta);
  }
  for (const BenchMetric& c : current.metrics) {
    if (base.find(c.name) == nullptr) {
      result.extra_in_current.push_back(c.name);
    }
  }
  return result;
}

std::string format_compare(const CompareResult& result, const BenchJson& base,
                           const BenchJson& current) {
  TextTable table("bench compare — " + base.bench + " (" + base.git_sha +
                      " -> " + current.git_sha + ")",
                  {"metric", "base", "current", "change %", "noise %",
                   "verdict"});
  for (const MetricDelta& delta : result.deltas) {
    const char* verdict = delta.regressed  ? "REGRESSED"
                          : delta.improved ? "improved"
                          : delta.better == Better::kNone ? "info"
                                                          : "ok";
    table.add_row({delta.name, format_double(delta.base, 4),
                   format_double(delta.current, 4),
                   format_double(100.0 * delta.rel_change, 2),
                   format_double(100.0 * delta.threshold, 1), verdict});
  }
  for (const std::string& name : result.missing_in_current) {
    table.add_row({name, "-", "missing", "-", "-", "REGRESSED"});
  }
  for (const std::string& name : result.extra_in_current) {
    table.add_row({name, "new", format_double(current.find(name)->value, 4),
                   "-", "-", "info"});
  }
  std::string out = table.render();
  out += result.regressed() ? "verdict: REGRESSED\n" : "verdict: ok\n";
  return out;
}

}  // namespace icr::bench
