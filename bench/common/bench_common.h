// Shared harness for the per-figure bench binaries.
//
// Every bench reproduces one table or figure of the paper as an aligned
// text table: rows are applications (or sweep points), columns are the
// figure's series. Instruction count per point comes from
// sim::default_instruction_count() (ICR_SIM_INSTRUCTIONS overrides).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/common/bench_json.h"
#include "src/sim/campaign.h"
#include "src/sim/experiment.h"
#include "src/util/table.h"

namespace icr::bench {

// Common bench CLI setup. Flags shared by every bench binary:
//   --quiet / -q        suppress campaign progress on stderr
//   --progress          force progress reporting even with --quiet
//   --instructions=N    per-point instruction budget (sets ICR_SIM_INSTRUCTIONS)
//   --threads=N         campaign worker threads (sets ICR_SIM_THREADS)
//   --json-out=FILE     write an icr-bench-v1 JSON document on exit
// Unrecognized "--" flags are rejected with exit code 2 through the shared
// sim::cli::unknown_flag path (same behavior as the tools/ binaries);
// benches that layer their own flags declare them via claim_flag() before
// init(). --help/-h prints the shared flag list.
// Call first thing in every bench main().
void init(int argc, char** argv);

// Registers `flag` (e.g. "--trials") as known to this binary before
// calling init(), suppressing the unknown-flag warning for it.
void claim_flag(const std::string& flag);

// True once init() ran with --quiet.
[[nodiscard]] bool quiet();

// Destination of --json-out, empty when the flag was absent.
[[nodiscard]] const std::string& json_out_path();

// Appends one metric to the pending bench JSON document (no-op without
// --json-out). The document is written once at process exit.
void record_metric(const std::string& name, double value,
                   Better better = Better::kNone, double noise = 0.0);

// Prints the standard bench header (figure id, settings, instruction count).
void print_header(const std::string& figure, const std::string& description);

// Runs `variants` over all eight applications and prints one metric per
// variant column, plus a cross-application average row.
// `metric` maps a RunResult to the plotted value.
void run_and_print(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name, int precision = 3,
    const sim::SimConfig& config = sim::SimConfig::table1());

// Like run_and_print but normalizes each app's value to the first variant
// (the paper's "normalized execution cycles" style).
void run_and_print_normalized(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name,
    const sim::SimConfig& config = sim::SimConfig::table1());

// The paper's Fig. 1 replication setting: one replica, attempts at
// Distance-N/2 only / at {N/2, N/4}.
[[nodiscard]] core::ReplicationConfig single_attempt();
[[nodiscard]] core::ReplicationConfig multi_attempt();
// Two replicas: first at N/2, second at N/4 (Fig. 3).
[[nodiscard]] core::ReplicationConfig two_replicas();

}  // namespace icr::bench
