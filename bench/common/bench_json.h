// Machine-readable bench results ("icr-bench-v1").
//
// Every bench binary can emit one JSON document describing the run: which
// bench, which source revision, the campaign configuration fingerprint,
// wall time, simulated MIPS, and a flat list of named metrics. Each metric
// carries a direction ("better": lower/higher/none) and an optional
// per-metric relative noise threshold, so tools/bench_compare can diff two
// documents without any out-of-band knowledge of what the numbers mean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icr::bench {

inline constexpr const char* kBenchJsonSchema = "icr-bench-v1";

// Direction in which a metric improves.
enum class Better { kLower, kHigher, kNone };

[[nodiscard]] const char* to_string(Better better) noexcept;

struct BenchMetric {
  std::string name;
  double value = 0.0;
  Better better = Better::kNone;
  // Relative change below this is noise for this metric; 0 defers to the
  // comparer's default threshold.
  double noise = 0.0;
};

struct BenchJson {
  std::string bench;        // bench binary / figure id
  std::string git_sha;      // build-time SHA (GITHUB_SHA overrides at runtime)
  std::string config_hash;  // campaign config fingerprint, hex
  double wall_seconds = 0.0;
  double mips = 0.0;  // simulated instructions per wall microsecond
  std::vector<BenchMetric> metrics;

  [[nodiscard]] const BenchMetric* find(const std::string& name) const;
};

// Serializes `doc` as a schema-tagged JSON object.
[[nodiscard]] std::string to_json(const BenchJson& doc);

// Parses a document written by to_json. Throws std::runtime_error on
// malformed JSON or a schema mismatch.
[[nodiscard]] BenchJson from_json_text(const std::string& text);

struct CompareOptions {
  // Relative change treated as noise when a metric carries no `noise` of
  // its own. 0.1 = 10%, comfortably below the 20% regressions the compare
  // gate must catch while riding out simulator wall-clock jitter.
  double default_threshold = 0.1;
};

struct MetricDelta {
  std::string name;
  double base = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // (current - base) / |base|
  double threshold = 0.0;   // resolved noise bound for this metric
  Better better = Better::kNone;
  bool regressed = false;
  bool improved = false;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;          // base order
  std::vector<std::string> missing_in_current;
  std::vector<std::string> extra_in_current;

  // True when any directional metric moved the wrong way past its noise
  // threshold, or the current run lost metrics the baseline had.
  [[nodiscard]] bool regressed() const;
};

// Diffs `current` against `base`, matching metrics by name.
[[nodiscard]] CompareResult compare(const BenchJson& base,
                                    const BenchJson& current,
                                    const CompareOptions& options = {});

// Renders a compare as an aligned table plus a one-line verdict.
[[nodiscard]] std::string format_compare(const CompareResult& result,
                                         const BenchJson& base,
                                         const BenchJson& current);

}  // namespace icr::bench
