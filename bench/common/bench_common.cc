#include "bench/common/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "src/sim/cli.h"
#include "src/sim/results_io.h"
#include "src/util/rng.h"

namespace icr::bench {

namespace {
bool g_quiet = false;
std::string g_json_out;

// Pending --json-out document plus cross-campaign accumulators; written
// once by an atexit hook so multi-figure binaries aggregate naturally.
BenchJson g_doc;
double g_sim_instructions = 0.0;  // total simulated instructions
std::uint64_t g_config_hash = 0;  // folded across campaigns
bool g_ran_campaign = false;

std::set<std::string>& claimed_flags() {
  static std::set<std::string> flags;
  return flags;
}

// Accepts "--flag=value"; returns the value part or nullptr on no match.
const char* flag_value(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

std::string basename_of(const char* path) {
  const std::string text = path == nullptr ? "bench" : path;
  const std::size_t slash = text.find_last_of('/');
  return slash == std::string::npos ? text : text.substr(slash + 1);
}

std::string resolve_git_sha() {
  // CI exports the exact commit; local builds fall back to the SHA CMake
  // captured at configure time.
  if (const char* sha = std::getenv("GITHUB_SHA")) {
    if (sha[0] != '\0') return sha;
  }
#ifdef ICR_GIT_SHA
  return ICR_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

void write_json_at_exit() {
  if (g_json_out.empty()) return;
  if (g_ran_campaign) {
    g_doc.config_hash = hex64(g_config_hash);
    g_doc.mips = g_doc.wall_seconds > 0.0
                     ? g_sim_instructions / g_doc.wall_seconds / 1e6
                     : 0.0;
  }
  try {
    sim::write_text_file(g_json_out, to_json(g_doc));
    if (!g_quiet) {
      std::fprintf(stderr, "bench json written to %s\n", g_json_out.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench json: %s\n", error.what());
  }
}

bool known_flag(const char* arg) {
  if (std::strcmp(arg, "--quiet") == 0 || std::strcmp(arg, "--progress") == 0) {
    return true;
  }
  const char* const valued[] = {"--instructions", "--threads", "--json-out"};
  for (const char* flag : valued) {
    if (flag_value(arg, flag) != nullptr) return true;
  }
  // google-benchmark binaries own the --benchmark_* namespace; their
  // Initialize() consumes those after init() has seen them.
  if (std::strncmp(arg, "--benchmark_", 12) == 0) return true;
  const std::string name(arg, std::strcspn(arg, "="));
  return claimed_flags().count(name) != 0;
}

}  // namespace

void claim_flag(const std::string& flag) { claimed_flags().insert(flag); }

void init(int argc, char** argv) {
  g_doc.bench = basename_of(argc > 0 ? argv[0] : nullptr);
  g_doc.git_sha = resolve_git_sha();
  bool progress_forced = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "%s — ICR bench binary. Shared flags:\n"
          "  --quiet / -q        suppress campaign progress on stderr\n"
          "  --progress          force progress reporting even with --quiet\n"
          "  --instructions=N    per-point budget (sets ICR_SIM_INSTRUCTIONS)\n"
          "  --threads=N         worker threads (sets ICR_SIM_THREADS)\n"
          "  --json-out=FILE     write an icr-bench-v1 JSON document on exit\n",
          g_doc.bench.c_str());
      std::exit(0);
    } else if (std::strcmp(arg, "--quiet") == 0 ||
               std::strcmp(arg, "-q") == 0) {
      g_quiet = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      progress_forced = true;
    } else if (const char* value = flag_value(arg, "--instructions")) {
      // Same knob as the ICR_SIM_INSTRUCTIONS environment variable; the
      // flag spelling matches the tools/ binaries.
      ::setenv("ICR_SIM_INSTRUCTIONS", value, /*overwrite=*/1);
    } else if (const char* value = flag_value(arg, "--threads")) {
      ::setenv("ICR_SIM_THREADS", value, /*overwrite=*/1);
    } else if (const char* value = flag_value(arg, "--json-out")) {
      g_json_out = value;
      std::atexit(write_json_at_exit);
    } else if (std::strncmp(arg, "--", 2) == 0 && !known_flag(arg)) {
      // Same hard rejection as the tools/ binaries (shared sim::cli path):
      // a typo like --instruction=1000 must not silently run the wrong
      // experiment. Benches that take their own flags declare them via
      // claim_flag() before init().
      sim::cli::unknown_flag(g_doc.bench.c_str(), arg);
    }
  }
  sim::CampaignRunner::set_default_progress_enabled(!g_quiet ||
                                                    progress_forced);
}

bool quiet() { return g_quiet; }

const std::string& json_out_path() { return g_json_out; }

void record_metric(const std::string& name, double value, Better better,
                   double noise) {
  if (g_json_out.empty()) return;
  BenchMetric metric;
  metric.name = name;
  metric.value = value;
  metric.better = better;
  metric.noise = noise;
  g_doc.metrics.push_back(std::move(metric));
}

void print_header(const std::string& figure, const std::string& description) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", figure.c_str());
  std::printf("# %s\n", description.c_str());
  std::printf("# instructions/point: %llu (override: ICR_SIM_INSTRUCTIONS)\n",
              static_cast<unsigned long long>(
                  sim::default_instruction_count()));
  std::printf("# threads: %u (override: ICR_SIM_THREADS)\n",
              sim::resolve_thread_count());
  std::printf("################################################################\n");
}

namespace {

// run_matrix with the campaign metadata kept: the JSON export needs wall
// time, config hash, and the simulated-instruction total, which the plain
// sim::run_matrix wrapper discards. Spec construction mirrors run_matrix
// exactly (single trial, no seed derivation) so figures stay bit-identical.
sim::CampaignResult run_figure_campaign(
    const std::vector<sim::SchemeVariant>& variants,
    const std::vector<trace::App>& apps, const sim::SimConfig& config) {
  sim::CampaignSpec spec;
  spec.variants = variants;
  spec.apps = apps;
  spec.config = config;
  sim::CampaignResult campaign = sim::CampaignRunner().run(spec);
  g_ran_campaign = true;
  g_doc.wall_seconds += campaign.meta.wall_seconds;
  g_sim_instructions += static_cast<double>(campaign.meta.instructions) *
                        static_cast<double>(campaign.cells.size());
  // Fold so multi-campaign binaries get one stable fingerprint.
  g_config_hash = mix64(g_config_hash ^ mix64(campaign.meta.config_hash));
  return campaign;
}

void print_matrix(const std::string& figure,
                  const std::vector<sim::SchemeVariant>& variants,
                  const sim::CampaignResult& campaign,
                  const std::function<double(const sim::RunResult&)>& metric,
                  const std::string& metric_name, int precision,
                  bool normalized) {
  const auto apps = trace::all_apps();
  std::vector<std::string> columns = {"benchmark"};
  for (const auto& v : variants) columns.push_back(v.label);
  TextTable table(figure + " — " + metric_name, std::move(columns));

  std::vector<double> sums(variants.size(), 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<double> row;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const sim::RunResult& result =
          campaign.at(v, a, 0, apps.size(), 1).result;
      double value = metric(result);
      if (normalized) {
        const double base = metric(campaign.at(0, a, 0, apps.size(), 1).result);
        value = base == 0.0 ? 0.0 : value / base;
      }
      sums[v] += value;
      row.push_back(value);
      record_metric(figure + "/" + trace::to_string(apps[a]) + "/" +
                        variants[v].label,
                    value);
    }
    table.add_numeric_row(trace::to_string(apps[a]), row, precision);
  }
  std::vector<double> avg;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    avg.push_back(sums[v] / static_cast<double>(apps.size()));
    record_metric(figure + "/average/" + variants[v].label, avg.back());
  }
  table.add_numeric_row("average", avg, precision);
  table.print();
}

}  // namespace

void run_and_print(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name, int precision,
    const sim::SimConfig& config) {
  print_header(figure, description);
  const auto campaign =
      run_figure_campaign(variants, trace::all_apps(), config);
  print_matrix(figure, variants, campaign, metric, metric_name, precision,
               /*normalized=*/false);
}

void run_and_print_normalized(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name, const sim::SimConfig& config) {
  print_header(figure, description);
  const auto campaign =
      run_figure_campaign(variants, trace::all_apps(), config);
  print_matrix(figure, variants, campaign, metric,
               metric_name + " (normalized to " + variants[0].label + ")", 3,
               /*normalized=*/true);
}

core::ReplicationConfig single_attempt() {
  core::ReplicationConfig rep;  // defaults: 1 replica @ N/2, no fallback
  return rep;
}

core::ReplicationConfig multi_attempt() {
  core::ReplicationConfig rep;
  rep.fallback = core::FallbackStrategy::kMultiAttempt;
  rep.extra_attempts = {core::Distance::quarter()};
  return rep;
}

core::ReplicationConfig two_replicas() {
  core::ReplicationConfig rep = multi_attempt();
  rep.num_replicas = 2;
  return rep;
}

}  // namespace icr::bench
