#include "bench/common/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace icr::bench {

namespace {
bool g_quiet = false;

// Accepts "--flag=value"; returns the value part or nullptr on no match.
const char* flag_value(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}
}  // namespace

void init(int argc, char** argv) {
  bool progress_forced = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quiet") == 0 || std::strcmp(arg, "-q") == 0) {
      g_quiet = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      progress_forced = true;
    } else if (const char* value = flag_value(arg, "--instructions")) {
      // Same knob as the ICR_SIM_INSTRUCTIONS environment variable; the
      // flag spelling matches the tools/ binaries.
      ::setenv("ICR_SIM_INSTRUCTIONS", value, /*overwrite=*/1);
    } else if (const char* value = flag_value(arg, "--threads")) {
      ::setenv("ICR_SIM_THREADS", value, /*overwrite=*/1);
    }
    // Unknown flags are ignored so individual benches can add their own.
  }
  sim::CampaignRunner::set_default_progress_enabled(!g_quiet ||
                                                    progress_forced);
}

bool quiet() { return g_quiet; }

void print_header(const std::string& figure, const std::string& description) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", figure.c_str());
  std::printf("# %s\n", description.c_str());
  std::printf("# instructions/point: %llu (override: ICR_SIM_INSTRUCTIONS)\n",
              static_cast<unsigned long long>(
                  sim::default_instruction_count()));
  std::printf("# threads: %u (override: ICR_SIM_THREADS)\n",
              sim::resolve_thread_count());
  std::printf("################################################################\n");
}

namespace {

void print_matrix(const std::string& figure,
                  const std::vector<sim::SchemeVariant>& variants,
                  const std::vector<std::vector<sim::RunResult>>& matrix,
                  const std::function<double(const sim::RunResult&)>& metric,
                  const std::string& metric_name, int precision,
                  bool normalized) {
  const auto apps = trace::all_apps();
  std::vector<std::string> columns = {"benchmark"};
  for (const auto& v : variants) columns.push_back(v.label);
  TextTable table(figure + " — " + metric_name, std::move(columns));

  std::vector<double> sums(variants.size(), 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<double> row;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      double value = metric(matrix[v][a]);
      if (normalized) {
        const double base = metric(matrix[0][a]);
        value = base == 0.0 ? 0.0 : value / base;
      }
      sums[v] += value;
      row.push_back(value);
    }
    table.add_numeric_row(trace::to_string(apps[a]), row, precision);
  }
  std::vector<double> avg;
  for (double s : sums) avg.push_back(s / static_cast<double>(apps.size()));
  table.add_numeric_row("average", avg, precision);
  table.print();
}

}  // namespace

void run_and_print(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name, int precision,
    const sim::SimConfig& config) {
  print_header(figure, description);
  const auto matrix = sim::run_matrix(variants, trace::all_apps(), config);
  print_matrix(figure, variants, matrix, metric, metric_name, precision,
               /*normalized=*/false);
}

void run_and_print_normalized(
    const std::string& figure, const std::string& description,
    const std::vector<sim::SchemeVariant>& variants,
    const std::function<double(const sim::RunResult&)>& metric,
    const std::string& metric_name, const sim::SimConfig& config) {
  print_header(figure, description);
  const auto matrix = sim::run_matrix(variants, trace::all_apps(), config);
  print_matrix(figure, variants, matrix, metric,
               metric_name + " (normalized to " + variants[0].label + ")", 3,
               /*normalized=*/true);
}

core::ReplicationConfig single_attempt() {
  core::ReplicationConfig rep;  // defaults: 1 replica @ N/2, no fallback
  return rep;
}

core::ReplicationConfig multi_attempt() {
  core::ReplicationConfig rep;
  rep.fallback = core::FallbackStrategy::kMultiAttempt;
  rep.extra_attempts = {core::Distance::quarter()};
  return rep;
}

core::ReplicationConfig two_replicas() {
  core::ReplicationConfig rep = multi_attempt();
  rep.num_replicas = 2;
  return rep;
}

}  // namespace icr::bench
