// Ablation (extension; scrubbing per Saleh et al., the paper's [21]):
// how background scrubbing interacts with each protection scheme under
// sustained injection. Expected shape: scrubbing sharply reduces
// unrecoverable loads for schemes with a repair source (ICR replicas, ECC,
// clean refetch) by fixing strikes before a second one accumulates or a
// load consumes them; it cannot help dirty parity-only data (BaseP).
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Ablation C",
      "Background scrubbing vs unrecoverable loads (vortex, random model, "
      "P=1e-3); scrub interval in cycles, 0 = off");

  const std::vector<sim::SchemeVariant> schemes = {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };

  TextTable t("unrecoverable loads per scheme and scrub interval",
              {"scheme", "off", "10000", "1000", "100"});
  for (const auto& v : schemes) {
    std::vector<std::string> row = {v.label};
    for (const std::uint64_t interval : {0ULL, 10000ULL, 1000ULL, 100ULL}) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_probability = 1e-3;
      const sim::RunResult r = sim::run_one(
          trace::App::kVortex, v.scheme.with_scrubbing(interval), cfg);
      row.push_back(std::to_string(r.dl1.unrecoverable_loads) + " (" +
                    std::to_string(r.dl1.scrub_corrections) + " fixed)");
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
