// Fig. 6: replication ability for ICR-*(LS) vs ICR-*(S) (aggressive dead
// block prediction). Expected shape: LS replicates more data than S, since
// every load-miss fill is an extra opportunity. The protection flavour
// (P/ECC) does not alter replication behaviour, so P and ECC columns match.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::run_and_print(
      "Fig. 6", "Replication ability, ICR-*(LS) vs ICR-*(S)",
      {
          {"ICR-P(S)", core::Scheme::IcrPPS_S()},
          {"ICR-P(LS)", core::Scheme::IcrPPS_LS()},
          {"ICR-ECC(S)", core::Scheme::IcrEccPS_S()},
          {"ICR-ECC(LS)", core::Scheme::IcrEccPS_LS()},
      },
      [](const sim::RunResult& r) { return r.dl1.replication_ability(); },
      "replication ability");
  return 0;
}
