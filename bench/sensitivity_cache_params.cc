// §5.7 sensitivity analysis: cache size and associativity sweeps for
// ICR-P-PS(S). Expected shape (paper): replication ability increases with
// cache size (more sites), but loads-with-replica moves little — even a
// small cache replicates the data that is really in demand; the same holds
// when associativity varies at fixed size.
#include "bench/common/bench_common.h"

using namespace icr;

namespace {

void sweep(const std::string& title,
           const std::vector<mem::CacheGeometry>& geometries,
           const std::vector<std::string>& labels) {
  const auto apps = {trace::App::kGzip, trace::App::kVpr, trace::App::kMcf,
                     trace::App::kMesa};
  TextTable t(title, {"configuration", "site success", "repl. ability",
                      "loads w/ replica", "dL1 miss rate"});
  for (std::size_t i = 0; i < geometries.size(); ++i) {
    sim::SimConfig cfg = sim::SimConfig::table1();
    cfg.dl1 = geometries[i];
    double site = 0, ability = 0, lwr = 0, mr = 0;
    int n = 0;
    for (const trace::App app : apps) {
      const sim::RunResult r =
          sim::run_one(app, core::Scheme::IcrPPS_S(), cfg);
      // Site success = the paper's "more replication sites available":
      // of the events that actually searched for a victim, how many found
      // one.
      site += r.dl1.site_searches == 0
                  ? 0.0
                  : 1.0 - static_cast<double>(r.dl1.site_search_failures) /
                              static_cast<double>(r.dl1.site_searches);
      ability += r.dl1.replication_ability();
      lwr += r.dl1.loads_with_replica_fraction();
      mr += r.dl1.miss_rate();
      ++n;
    }
    t.add_numeric_row(labels[i], {site / n, ability / n, lwr / n, mr / n});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "§5.7", "Sensitivity to cache size and associativity, ICR-P-PS(S), "
              "averaged over gzip/vpr/mcf/mesa");

  sweep("size sweep (4-way, 64B lines)",
        {{8 * 1024, 64, 4}, {16 * 1024, 64, 4}, {32 * 1024, 64, 4},
         {64 * 1024, 64, 4}},
        {"8KB", "16KB", "32KB", "64KB"});

  sweep("associativity sweep (16KB, 64B lines)",
        {{16 * 1024, 64, 1}, {16 * 1024, 64, 2}, {16 * 1024, 64, 4},
         {16 * 1024, 64, 8}},
        {"1-way", "2-way", "4-way", "8-way"});
  return 0;
}
