// Degraded-geometry figure matrix (docs/GEOMETRY.md): the decay-window
// question under way failure. Disabling ways removes replication sites the
// same way a shorter decay window removes dead candidates, so the paper's
// window sweep (Fig. 10/11) is re-run per degraded geometry: rows are
// (size, assoc, disabled-way) points, columns decay windows, cells the
// replication ability of ICR-P-PS(S) averaged over apps — plus the argmax
// column showing whether the best window shifts as capacity degrades.
// Expected shape: smaller effective capacity raises set pressure, so dead
// candidates appear sooner and the ability-maximizing window moves left
// (shorter) while overall ability drops.
#include "bench/common/bench_common.h"

using namespace icr;

namespace {

struct GeometryPoint {
  std::string label;
  mem::CacheGeometry geometry;
  std::uint32_t disabled;
};

std::vector<GeometryPoint> matrix() {
  std::vector<GeometryPoint> points;
  const struct {
    std::uint32_t size;
    std::uint32_t assoc;
  } geometries[] = {{16 * 1024, 4}, {8 * 1024, 4}, {16 * 1024, 2},
                    {8 * 1024, 2}};
  for (const auto& g : geometries) {
    for (std::uint32_t k : {0u, 1u, 2u}) {
      if (k >= g.assoc) continue;  // at least one way must stay enabled
      points.push_back({std::to_string(g.size / 1024) + "K/" +
                            std::to_string(g.assoc) + "w d" +
                            std::to_string(k),
                        {g.size, 64, g.assoc},
                        k});
    }
  }
  return points;
}

double mean_metric(
    const core::Scheme& scheme, const GeometryPoint& point,
    const std::function<double(const sim::RunResult&)>& metric) {
  sim::SimConfig config = sim::SimConfig::table1();
  config.dl1 = point.geometry;
  config.dl1_way_disable = {};
  config.dl1_way_disable.count = point.disabled;
  const auto apps = {trace::App::kGzip, trace::App::kMcf,
                     trace::App::kVortex};
  double sum = 0.0;
  int n = 0;
  for (const trace::App app : apps) {
    sum += metric(sim::run_one(app, scheme, config));
    ++n;
  }
  return sum / n;
}

}  // namespace

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "degraded geometry",
      "Decay-window sweep per degraded dL1 geometry, ICR-P-PS(S), averaged "
      "over gzip/mcf/vortex — does the best window shift as ways fail?");

  const std::vector<std::uint64_t> windows = {0, 500, 1000, 2000, 5000};

  std::vector<std::string> header = {"geometry"};
  for (const std::uint64_t w : windows) header.push_back("w=" + std::to_string(w));
  header.push_back("best");

  TextTable ability("replication ability vs decay window", header);
  for (const GeometryPoint& point : matrix()) {
    std::vector<double> row;
    std::size_t best = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const core::Scheme scheme =
          core::Scheme::IcrPPS_S().with_decay_window(windows[i]);
      row.push_back(mean_metric(scheme, point, [](const sim::RunResult& r) {
        return r.dl1.replication_ability();
      }));
      if (row[i] > row[best]) best = i;
    }
    std::vector<std::string> cells = {point.label};
    for (const double v : row) cells.push_back(format_double(v, 3));
    cells.push_back("w=" + std::to_string(windows[best]));
    ability.add_row(std::move(cells));
    bench::record_metric("degraded_geometry/" + point.label +
                             "/best_window",
                         static_cast<double>(windows[best]));
    bench::record_metric("degraded_geometry/" + point.label +
                             "/peak_ability",
                         row[best], bench::Better::kHigher, 0.1);
  }
  ability.print();
  std::printf("\n");

  // Scheme cross-check at the aggressive window: degraded capacity hits
  // every replicating scheme, the L-variants hardest (they must also hold
  // the displaced loads).
  TextTable schemes(
      "replication ability at window 0, by scheme",
      {"geometry", "ICR-P-PS(S)", "ICR-ECC-PS(S)", "ICR-P-PP(S)"});
  for (const GeometryPoint& point : matrix()) {
    schemes.add_numeric_row(
        point.label,
        {mean_metric(core::Scheme::IcrPPS_S(), point,
                     [](const sim::RunResult& r) {
                       return r.dl1.replication_ability();
                     }),
         mean_metric(core::Scheme::IcrEccPS_S(), point,
                     [](const sim::RunResult& r) {
                       return r.dl1.replication_ability();
                     }),
         mean_metric(core::Scheme::IcrPPP_S(), point,
                     [](const sim::RunResult& r) {
                       return r.dl1.replication_ability();
                     })});
  }
  schemes.print();
  return 0;
}
