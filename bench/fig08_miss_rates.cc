// Fig. 8: dL1 miss rates for Base*, ICR-*(LS) and ICR-*(S). Expected shape:
// both ICR triggers raise the miss rate over the base cache (replicas
// displace blocks); LS more than S; mcf barely moves (its locality is so
// poor that displaced blocks were useless anyway).
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::run_and_print(
      "Fig. 8", "dL1 miss rates: Base*, ICR-*(LS), ICR-*(S)",
      {
          {"Base*", core::Scheme::BaseP()},
          {"ICR-*(LS)", core::Scheme::IcrPPS_LS()},
          {"ICR-*(S)", core::Scheme::IcrPPS_S()},
      },
      [](const sim::RunResult& r) { return r.dl1.miss_rate(); },
      "dL1 miss rate", 4);
  return 0;
}
