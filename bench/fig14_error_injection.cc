// Fig. 14: percentage of unrecoverable loads vs per-cycle error probability
// (vortex, random injection model) for BaseP, ICR-P-PS(S), ICR-ECC-PS(S).
// BaseECC is included as the zero line (SEC-DED corrects all single-bit
// errors). Expected shape: ICR schemes orders of magnitude more resilient
// than BaseP; everything tends to zero at realistic error rates.
//
// Every (scheme, error-rate) point and every (scheme, fault-model) point of
// the companion table is one campaign cell: the whole figure is a single
// parallel CampaignRunner invocation per table.
#include "bench/common/bench_common.h"
#include "src/sim/campaign.h"

using namespace icr;

namespace {

struct SchemePoint {
  const char* label;
  core::Scheme scheme;
};

std::vector<SchemePoint> fig14_schemes() {
  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  return {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
      {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
  };
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 14",
      "Unrecoverable loads vs per-cycle error probability (vortex, random "
      "model)");

  const auto schemes = fig14_schemes();
  const std::vector<double> probabilities = {1e-2, 1e-3, 1e-4, 1e-5};

  // Sweep table: the (probability x scheme) grid flattened into campaign
  // variants, each with its own fault configuration; app fixed to vortex.
  sim::CampaignSpec sweep;
  sweep.apps = {trace::App::kVortex};
  for (const double p : probabilities) {
    for (const SchemePoint& s : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = fault::FaultModel::kRandom;
      cfg.fault_probability = p;
      sweep.variants.emplace_back(s.label, s.scheme, cfg);
    }
  }
  const sim::CampaignResult swept = sim::CampaignRunner().run(sweep);

  std::vector<std::string> columns = {"P(error)/cycle"};
  for (const SchemePoint& s : schemes) columns.push_back(s.label);
  TextTable t("Fig. 14 — % unrecoverable loads (vortex)", std::move(columns));
  for (std::size_t pi = 0; pi < probabilities.size(); ++pi) {
    std::vector<double> row;
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const sim::RunResult& r =
          swept.at(pi * schemes.size() + si, 0, 0, 1, 1).result;
      row.push_back(100.0 * r.dl1.unrecoverable_load_fraction());
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", probabilities[pi]);
    t.add_numeric_row(label, row, 5);
  }
  t.print();

  // Companion sweep over the other Kim/Somani fault models at a fixed rate.
  // Reported per scheme: detected-but-unrecoverable loads AND silent wrong
  // values (the adjacent model defeats byte parity entirely: both flips
  // land in one byte, so BaseP shows zero "unrecoverable" but real silent
  // corruption).
  const std::vector<fault::FaultModel> models = {
      fault::FaultModel::kRandom, fault::FaultModel::kAdjacent,
      fault::FaultModel::kColumn, fault::FaultModel::kDirect};

  sim::CampaignSpec companion;
  companion.apps = {trace::App::kVortex};
  for (const fault::FaultModel model : models) {
    for (const SchemePoint& s : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = model;
      cfg.fault_probability = 1e-3;
      companion.variants.emplace_back(s.label, s.scheme, cfg);
    }
  }
  const sim::CampaignResult modeled = sim::CampaignRunner().run(companion);

  TextTable t2("Fig. 14 (companion) — unrecoverable% / silent% by fault "
               "model (vortex, P=1e-3)",
               {"model", "BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-ECC-PS(S)"});
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    std::vector<std::string> row = {fault::to_string(models[mi])};
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const sim::RunResult& r =
          modeled.at(mi * schemes.size() + si, 0, 0, 1, 1).result;
      const double unrec = 100.0 * r.dl1.unrecoverable_load_fraction();
      const double silent =
          r.dl1.loads == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.pipeline.silent_corrupt_loads) /
                    static_cast<double>(r.dl1.loads);
      row.push_back(format_double(unrec, 4) + " / " +
                    format_double(silent, 4));
    }
    t2.add_row(std::move(row));
  }
  t2.print();
  return 0;
}
