// Fig. 14: percentage of unrecoverable loads vs per-cycle error probability
// (vortex, random injection model) for BaseP, ICR-P-PS(S), ICR-ECC-PS(S).
// BaseECC is included as the zero line (SEC-DED corrects all single-bit
// errors). Expected shape: ICR schemes orders of magnitude more resilient
// than BaseP; everything tends to zero at realistic error rates.
#include "bench/common/bench_common.h"

using namespace icr;

int main() {
  bench::print_header(
      "Fig. 14",
      "Unrecoverable loads vs per-cycle error probability (vortex, random "
      "model)");

  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  const std::vector<sim::SchemeVariant> variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
      {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
  };

  std::vector<std::string> columns = {"P(error)/cycle"};
  for (const auto& v : variants) columns.push_back(v.label);
  TextTable t("Fig. 14 — % unrecoverable loads (vortex)", std::move(columns));

  for (const double p : {1e-2, 1e-3, 1e-4, 1e-5}) {
    sim::SimConfig cfg = sim::SimConfig::table1();
    cfg.fault_model = fault::FaultModel::kRandom;
    cfg.fault_probability = p;
    std::vector<double> row;
    for (const auto& v : variants) {
      const sim::RunResult r = sim::run_one(trace::App::kVortex, v.scheme, cfg);
      row.push_back(100.0 * r.dl1.unrecoverable_load_fraction());
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", p);
    t.add_numeric_row(label, row, 5);
  }
  t.print();

  // Companion sweep over the other Kim/Somani fault models at a fixed rate.
  // Reported per scheme: detected-but-unrecoverable loads AND silent wrong
  // values (the adjacent model defeats byte parity entirely: both flips
  // land in one byte, so BaseP shows zero "unrecoverable" but real silent
  // corruption).
  TextTable t2("Fig. 14 (companion) — unrecoverable% / silent% by fault "
               "model (vortex, P=1e-3)",
               {"model", "BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-ECC-PS(S)"});
  for (const auto model :
       {fault::FaultModel::kRandom, fault::FaultModel::kAdjacent,
        fault::FaultModel::kColumn, fault::FaultModel::kDirect}) {
    sim::SimConfig cfg = sim::SimConfig::table1();
    cfg.fault_model = model;
    cfg.fault_probability = 1e-3;
    std::vector<std::string> row = {fault::to_string(model)};
    for (const auto& v : variants) {
      const sim::RunResult r = sim::run_one(trace::App::kVortex, v.scheme, cfg);
      const double unrec = 100.0 * r.dl1.unrecoverable_load_fraction();
      const double silent =
          r.dl1.loads == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.pipeline.silent_corrupt_loads) /
                    static_cast<double>(r.dl1.loads);
      row.push_back(format_double(unrec, 4) + " / " +
                    format_double(silent, 4));
    }
    t2.add_row(std::move(row));
  }
  t2.print();
  return 0;
}
