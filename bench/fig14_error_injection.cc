// Fig. 14: percentage of unrecoverable loads vs per-cycle error probability
// (vortex, random injection model) for BaseP, ICR-P-PS(S), ICR-ECC-PS(S).
// BaseECC is included as the zero line (SEC-DED corrects all single-bit
// errors). Expected shape: ICR schemes orders of magnitude more resilient
// than BaseP; everything tends to zero at realistic error rates.
//
// Every (scheme, error-rate) point and every (scheme, fault-model) point of
// the companion table is one campaign cell: the whole figure is a single
// parallel CampaignRunner invocation per table.
#include "bench/common/bench_common.h"
#include "src/sim/campaign.h"

using namespace icr;

namespace {

struct SchemePoint {
  const char* label;
  core::Scheme scheme;
};

std::vector<SchemePoint> fig14_schemes() {
  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  return {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
      {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
  };
}

// Cross-check of the figure's data sources: the numbers plotted here come
// from dl1/pipeline stats, while the injector now attributes every observed
// error to a per-outcome FaultStats counter. The three views must agree
// cell by cell; a mismatch means the attribution broke and the figure can
// no longer be trusted, so the bench fails loudly.
std::size_t reconcile_outcomes(const sim::CampaignResult& campaign,
                               const char* table) {
  std::size_t mismatches = 0;
  for (const sim::CellResult& cell : campaign.cells) {
    const sim::RunResult& r = cell.result;
    const bool ok =
        r.faults.detected_uncorrectable == r.pipeline.unrecoverable_loads &&
        r.faults.detected_uncorrectable == r.dl1.unrecoverable_loads &&
        r.faults.silent == r.pipeline.silent_corrupt_loads &&
        r.faults.replica_recovered <= r.dl1.errors_corrected_by_replica &&
        r.faults.observed() <= r.dl1.errors_detected + r.faults.silent;
    if (!ok) {
      std::fprintf(stderr,
                   "fig14 reconciliation failure (%s, %s): fault outcomes "
                   "{corr=%llu repl=%llu unrec=%llu silent=%llu} vs dl1 "
                   "unrec=%llu pipeline {unrec=%llu silent=%llu}\n",
                   table, r.scheme.c_str(),
                   static_cast<unsigned long long>(r.faults.corrected),
                   static_cast<unsigned long long>(r.faults.replica_recovered),
                   static_cast<unsigned long long>(
                       r.faults.detected_uncorrectable),
                   static_cast<unsigned long long>(r.faults.silent),
                   static_cast<unsigned long long>(r.dl1.unrecoverable_loads),
                   static_cast<unsigned long long>(
                       r.pipeline.unrecoverable_loads),
                   static_cast<unsigned long long>(
                       r.pipeline.silent_corrupt_loads));
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Fig. 14",
      "Unrecoverable loads vs per-cycle error probability (vortex, random "
      "model)");

  const auto schemes = fig14_schemes();
  const std::vector<double> probabilities = {1e-2, 1e-3, 1e-4, 1e-5};

  // Sweep table: the (probability x scheme) grid flattened into campaign
  // variants, each with its own fault configuration; app fixed to vortex.
  sim::CampaignSpec sweep;
  sweep.apps = {trace::App::kVortex};
  for (const double p : probabilities) {
    for (const SchemePoint& s : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = fault::FaultModel::kRandom;
      cfg.fault_probability = p;
      sweep.variants.emplace_back(s.label, s.scheme, cfg);
    }
  }
  const sim::CampaignResult swept = sim::CampaignRunner().run(sweep);

  std::vector<std::string> columns = {"P(error)/cycle"};
  for (const SchemePoint& s : schemes) columns.push_back(s.label);
  TextTable t("Fig. 14 — % unrecoverable loads (vortex)", std::move(columns));
  for (std::size_t pi = 0; pi < probabilities.size(); ++pi) {
    std::vector<double> row;
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const sim::RunResult& r =
          swept.at(pi * schemes.size() + si, 0, 0, 1, 1).result;
      row.push_back(100.0 * r.dl1.unrecoverable_load_fraction());
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", probabilities[pi]);
    t.add_numeric_row(label, row, 5);
  }
  t.print();

  // Companion sweep over the other Kim/Somani fault models at a fixed rate.
  // Reported per scheme: detected-but-unrecoverable loads AND silent wrong
  // values (the adjacent model defeats byte parity entirely: both flips
  // land in one byte, so BaseP shows zero "unrecoverable" but real silent
  // corruption).
  const std::vector<fault::FaultModel> models = {
      fault::FaultModel::kRandom, fault::FaultModel::kAdjacent,
      fault::FaultModel::kColumn, fault::FaultModel::kDirect};

  sim::CampaignSpec companion;
  companion.apps = {trace::App::kVortex};
  for (const fault::FaultModel model : models) {
    for (const SchemePoint& s : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = model;
      cfg.fault_probability = 1e-3;
      companion.variants.emplace_back(s.label, s.scheme, cfg);
    }
  }
  const sim::CampaignResult modeled = sim::CampaignRunner().run(companion);

  TextTable t2("Fig. 14 (companion) — unrecoverable% / silent% by fault "
               "model (vortex, P=1e-3)",
               {"model", "BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-ECC-PS(S)"});
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    std::vector<std::string> row = {fault::to_string(models[mi])};
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const sim::RunResult& r =
          modeled.at(mi * schemes.size() + si, 0, 0, 1, 1).result;
      const double unrec = 100.0 * r.dl1.unrecoverable_load_fraction();
      const double silent =
          r.dl1.loads == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.pipeline.silent_corrupt_loads) /
                    static_cast<double>(r.dl1.loads);
      row.push_back(format_double(unrec, 4) + " / " +
                    format_double(silent, 4));
    }
    t2.add_row(std::move(row));
  }
  t2.print();

  const std::size_t mismatches = reconcile_outcomes(swept, "sweep") +
                                 reconcile_outcomes(modeled, "companion");
  if (mismatches != 0) {
    std::fprintf(stderr, "fig14: %zu cells failed outcome reconciliation\n",
                 mismatches);
    return 1;
  }
  std::printf("\noutcome reconciliation: OK (%zu cells, per-outcome fault "
              "counters match dl1/pipeline views)\n",
              swept.cells.size() + modeled.cells.size());
  return 0;
}
