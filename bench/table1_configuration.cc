// Table 1: configuration parameters of the simulated superscalar system.
// Prints the configuration actually instantiated by SimConfig::table1() and
// cross-checks the live objects, so this bench fails loudly if the code
// ever drifts from the paper's parameters.
#include <cstdio>
#include <cstdlib>

#include "bench/common/bench_common.h"
#include "src/util/table.h"

using namespace icr;

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "Table 1 mismatch: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const sim::SimConfig cfg = sim::SimConfig::table1();

  TextTable t("Table 1 — base configuration (paper values)",
              {"parameter", "value"});
  t.add_row({"Functional units", "4 int ALU, 1 int mul/div, 4 FP ALU, 1 FP mul/div"});
  t.add_row({"LSQ size", std::to_string(cfg.pipeline.lsq_size) + " instructions"});
  t.add_row({"RUU size", std::to_string(cfg.pipeline.ruu_size) + " instructions"});
  t.add_row({"Issue width", std::to_string(cfg.pipeline.issue_width) + " instructions/cycle"});
  t.add_row({"L1 instruction cache", "16KB, 1-way, 32B blocks, 1 cycle"});
  t.add_row({"L1 data cache", "16KB, 4-way, 64B blocks, 1 cycle"});
  t.add_row({"L2 (unified)", "256KB, 4-way, 64B blocks, 6 cycles"});
  t.add_row({"Memory", std::to_string(cfg.hierarchy.memory_latency) + " cycle latency"});
  t.add_row({"Branch predictor", "combined: 2K bimodal + 1K two-level (8-bit hist) + meta"});
  t.add_row({"BTB", "512 entries, 4-way"});
  t.add_row({"Misprediction penalty", std::to_string(cfg.pipeline.mispredict_penalty) + " cycles"});
  t.add_row({"Write policy", "write-back (all caches)"});
  t.print();

  // Cross-check the instantiated objects against the paper.
  check(cfg.pipeline.issue_width == 4, "issue width");
  check(cfg.pipeline.ruu_size == 16, "RUU size");
  check(cfg.pipeline.lsq_size == 8, "LSQ size");
  check(cfg.pipeline.mispredict_penalty == 3, "misprediction penalty");
  check(cfg.pipeline.fus.int_alu == 4 && cfg.pipeline.fus.int_muldiv == 1 &&
            cfg.pipeline.fus.fp_alu == 4 && cfg.pipeline.fus.fp_muldiv == 1,
        "functional units");
  check(cfg.dl1.size_bytes == 16 * 1024 && cfg.dl1.associativity == 4 &&
            cfg.dl1.line_bytes == 64,
        "dL1 geometry");
  check(cfg.hierarchy.l1i.size_bytes == 16 * 1024 &&
            cfg.hierarchy.l1i.associativity == 1 &&
            cfg.hierarchy.l1i.line_bytes == 32,
        "L1I geometry");
  check(cfg.hierarchy.l2.size_bytes == 256 * 1024 &&
            cfg.hierarchy.l2.associativity == 4 &&
            cfg.hierarchy.l2.line_bytes == 64,
        "L2 geometry");
  check(cfg.hierarchy.l2_latency == 6 && cfg.hierarchy.memory_latency == 100 &&
            cfg.hierarchy.l1i_latency == 1,
        "latencies");
  check(cfg.pipeline.branch.bimodal_entries == 2048 &&
            cfg.pipeline.branch.two_level_entries == 1024 &&
            cfg.pipeline.branch.history_bits == 8 &&
            cfg.pipeline.branch.btb_entries == 512 &&
            cfg.pipeline.branch.btb_ways == 4,
        "branch predictor");
  std::printf("\nAll Table-1 parameters verified against the instantiated "
              "configuration.\n");
  return 0;
}
