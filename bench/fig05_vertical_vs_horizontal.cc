// Fig. 5: loads with replica under vertical (Distance-N/2, across sets) vs
// horizontal (Distance-0, within the set) replication, ICR-P-PS(S).
// Expected shape: little difference — live/dead lines are evenly balanced
// across sets. A Distance-7 column (the paper's prime-distance experiment,
// §5.1) is included as well.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  const core::Scheme base = core::Scheme::IcrPPS_S();
  core::ReplicationConfig vertical;  // N/2
  core::ReplicationConfig horizontal;
  horizontal.first_distance = core::Distance::zero();
  core::ReplicationConfig prime;
  prime.first_distance = core::Distance::absolute(7);

  bench::run_and_print(
      "Fig. 5",
      "Loads with replica: vertical (N/2) vs horizontal (0) vs Distance-7, "
      "ICR-P-PS(S)",
      {
          {"vertical(N/2)", base.with_replication(vertical)},
          {"horizontal(0)", base.with_replication(horizontal)},
          {"distance-7", base.with_replication(prime)},
      },
      [](const sim::RunResult& r) {
        return r.dl1.loads_with_replica_fraction();
      },
      "loads with replica (fraction of read hits)");
  return 0;
}
