// Engineering micro-benchmarks (google-benchmark) for the hot primitives:
// parity, SEC-DED encode/decode, dL1 access paths, dead-block evaluation,
// and trace generation throughput. Not a paper figure — a regression
// baseline for the simulator itself.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common/bench_json.h"
#include "src/coding/parity.h"
#include "src/sim/results_io.h"
#include "src/coding/secded.h"
#include "src/core/icr_cache.h"
#include "src/core/scheme.h"
#include "src/cpu/pipeline.h"
#include "src/mem/memory_hierarchy.h"
#include "src/trace/trace_v2.h"
#include "src/trace/workloads.h"
#include "src/util/rng.h"

namespace {

using namespace icr;

void BM_ByteParity(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t word = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(byte_parity(word));
    word += 0x9E3779B97F4A7C15ULL;
  }
}
BENCHMARK(BM_ByteParity);

void BM_SecDedEncode(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t word = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_encode(word));
    word += 0x9E3779B97F4A7C15ULL;
  }
}
BENCHMARK(BM_SecDedEncode);

void BM_SecDedDecodeClean(benchmark::State& state) {
  const std::uint64_t word = 0xDEADBEEFCAFEF00DULL;
  const std::uint8_t check = secded_encode(word);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_decode(word, check));
  }
}
BENCHMARK(BM_SecDedDecodeClean);

void BM_SecDedDecodeCorrect(benchmark::State& state) {
  const std::uint64_t word = 0xDEADBEEFCAFEF00DULL;
  const std::uint8_t check = secded_encode(word);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_decode(word ^ 0x10, check));
  }
}
BENCHMARK(BM_SecDedDecodeCorrect);

void BM_DL1LoadHit(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  dl1.store(0x1000, 1, 0);
  std::uint64_t cycle = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl1.load(0x1000, cycle++));
  }
}
BENCHMARK(BM_DL1LoadHit);

void BM_DL1StoreWithReplicaUpdate(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl1.store(0x1000, cycle, cycle));
    ++cycle;
  }
}
BENCHMARK(BM_DL1StoreWithReplicaUpdate);

// Replication-site search over a warmed set. The masked variant disables
// ways per set (docs/GEOMETRY.md); its scan skips them through the
// per-set bitmask, so masked search must not be slower than the full scan
// beyond noise — the property the BENCH baseline pins down.
void victim_search_bench(benchmark::State& state, std::uint32_t disabled) {
  mem::MemoryHierarchy hierarchy;
  mem::WayDisableConfig mask;
  mask.count = disabled;
  const mem::CacheGeometry geometry = mem::l1d_geometry_default();
  core::IcrCache dl1(geometry, core::Scheme::IcrPPS_S(), hierarchy, mask);
  std::uint64_t cycle = 0;
  const std::uint64_t lines = geometry.size_bytes / geometry.line_bytes;
  for (std::uint64_t b = 0; b < lines; ++b) {
    dl1.store(b * geometry.line_bytes, b, cycle++);
  }
  const std::uint32_t sets = geometry.num_sets();
  std::uint32_t set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dl1.select_replica_victim(set, ~0ULL, cycle++));
    set = (set + 1) % sets;
  }
}

void BM_VictimSearch(benchmark::State& state) {
  victim_search_bench(state, 0);
}
BENCHMARK(BM_VictimSearch);

void BM_VictimSearchMasked(benchmark::State& state) {
  victim_search_bench(state, 2);
}
BENCHMARK(BM_VictimSearchMasked);

void BM_TraceGeneration(benchmark::State& state) {
  trace::SyntheticWorkload w(trace::profile_for(trace::App::kGcc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.next());
  }
}
BENCHMARK(BM_TraceGeneration);

// Shared v2 trace fixture for the streaming-read and seek benchmarks:
// recorded once per process, multi-chunk so seeks cross chunk boundaries.
const std::string& stream_bench_trace() {
  static const std::string path = [] {
    std::string p = "/tmp/icr_bench_stream.icrt";
    trace::SyntheticWorkload w(trace::profile_for(trace::App::kGcc));
    trace::TraceV2Writer::Options options;
    options.chunk_records = 4096;
    trace::record_trace_v2(w, 100000, p, options);
    return p;
  }();
  return path;
}

void BM_TraceStreamRead(benchmark::State& state) {
  // Sequential replay through the mmap streaming reader (chunk decode
  // amortized): records per second is the number icr_sim replay rides on.
  trace::StreamingTraceSource source(stream_bench_trace());
  std::uint64_t done = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.next());
    ++done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_TraceStreamRead);

void BM_TraceSeek(benchmark::State& state) {
  // Random repositioning through the chunk index — the campaign-shard and
  // sampling fast-forward path. Strides are coprime to the trace length so
  // successive seeks land in different chunks.
  trace::StreamingTraceSource source(stream_bench_trace());
  std::uint64_t n = 0;
  for (auto _ : state) {
    n = (n + 31337) % 100000;
    source.seek_to(n);
    benchmark::DoNotOptimize(source.position());
  }
}
BENCHMARK(BM_TraceSeek);

void BM_EndToEndSimulatedInstruction(benchmark::State& state) {
  // Amortized cost of one simulated instruction through the full stack.
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  trace::SyntheticWorkload w(trace::profile_for(trace::App::kVpr));
  cpu::Pipeline pipe(cpu::PipelineConfig{}, w, dl1, hierarchy);
  std::uint64_t done = 0;
  for (auto _ : state) {
    pipe.run(1000);
    done += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_EndToEndSimulatedInstruction)->Unit(benchmark::kMicrosecond);

// Captures every per-iteration run while still printing the normal
// console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        runs.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(report);
  }
};

std::string resolve_git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA")) {
    if (sha[0] != '\0') return sha;
  }
#ifdef ICR_GIT_SHA
  return ICR_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so --json-out is stripped before Initialize() and the
// collected runs are exported as an icr-bench-v1 document afterwards.
int main(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }

  CollectingReporter reporter;
  const auto start = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  benchmark::Shutdown();

  if (json_out.empty()) return 0;
  using icr::bench::BenchJson;
  using icr::bench::BenchMetric;
  using icr::bench::Better;
  BenchJson doc;
  doc.bench = "micro_ops";
  doc.git_sha = resolve_git_sha();
  doc.wall_seconds = wall.count();
  for (const auto& run : reporter.runs) {
    const double ns_per_op =
        run.iterations == 0
            ? run.real_accumulated_time * 1e9
            : run.real_accumulated_time /
                  static_cast<double>(run.iterations) * 1e9;
    // Micro timings jitter heavily across CI machines: a generous default
    // noise bound rides in each metric so baselines stay meaningful without
    // tripping on scheduler variance (bench_compare --threshold can still
    // tighten or loosen the gate for metrics without one).
    doc.metrics.push_back(BenchMetric{run.benchmark_name() + "/ns_per_op",
                                      ns_per_op, Better::kLower,
                                      /*noise=*/0.5});
    const auto items = run.counters.find("items_per_second");
    if (items != run.counters.end()) {
      doc.metrics.push_back(
          BenchMetric{run.benchmark_name() + "/items_per_second",
                      items->second.value, Better::kHigher, /*noise=*/0.5});
      // The end-to-end benchmark's item rate is simulated instructions per
      // second — the same MIPS number the campaign engine reports.
      doc.mips = items->second.value / 1e6;
    }
  }
  try {
    icr::sim::write_text_file(json_out, to_json(doc));
    std::fprintf(stderr, "bench json written to %s\n", json_out.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench json: %s\n", error.what());
    return 1;
  }
  return 0;
}
