// Engineering micro-benchmarks (google-benchmark) for the hot primitives:
// parity, SEC-DED encode/decode, dL1 access paths, dead-block evaluation,
// and trace generation throughput. Not a paper figure — a regression
// baseline for the simulator itself.
#include <benchmark/benchmark.h>

#include "src/coding/parity.h"
#include "src/coding/secded.h"
#include "src/core/icr_cache.h"
#include "src/core/scheme.h"
#include "src/cpu/pipeline.h"
#include "src/mem/memory_hierarchy.h"
#include "src/trace/workloads.h"
#include "src/util/rng.h"

namespace {

using namespace icr;

void BM_ByteParity(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t word = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(byte_parity(word));
    word += 0x9E3779B97F4A7C15ULL;
  }
}
BENCHMARK(BM_ByteParity);

void BM_SecDedEncode(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t word = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_encode(word));
    word += 0x9E3779B97F4A7C15ULL;
  }
}
BENCHMARK(BM_SecDedEncode);

void BM_SecDedDecodeClean(benchmark::State& state) {
  const std::uint64_t word = 0xDEADBEEFCAFEF00DULL;
  const std::uint8_t check = secded_encode(word);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_decode(word, check));
  }
}
BENCHMARK(BM_SecDedDecodeClean);

void BM_SecDedDecodeCorrect(benchmark::State& state) {
  const std::uint64_t word = 0xDEADBEEFCAFEF00DULL;
  const std::uint8_t check = secded_encode(word);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secded_decode(word ^ 0x10, check));
  }
}
BENCHMARK(BM_SecDedDecodeCorrect);

void BM_DL1LoadHit(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  dl1.store(0x1000, 1, 0);
  std::uint64_t cycle = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl1.load(0x1000, cycle++));
  }
}
BENCHMARK(BM_DL1LoadHit);

void BM_DL1StoreWithReplicaUpdate(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl1.store(0x1000, cycle, cycle));
    ++cycle;
  }
}
BENCHMARK(BM_DL1StoreWithReplicaUpdate);

void BM_TraceGeneration(benchmark::State& state) {
  trace::SyntheticWorkload w(trace::profile_for(trace::App::kGcc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.next());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSimulatedInstruction(benchmark::State& state) {
  // Amortized cost of one simulated instruction through the full stack.
  mem::MemoryHierarchy hierarchy;
  core::IcrCache dl1(mem::l1d_geometry_default(), core::Scheme::IcrPPS_S(),
                     hierarchy);
  trace::SyntheticWorkload w(trace::profile_for(trace::App::kVpr));
  cpu::Pipeline pipe(cpu::PipelineConfig{}, w, dl1, hierarchy);
  std::uint64_t done = 0;
  for (auto _ : state) {
    pipe.run(1000);
    done += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_EndToEndSimulatedInstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
