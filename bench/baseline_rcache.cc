// Baseline comparison: BaseP + Kim&Somani duplication buffer (R-Cache)
// vs ICR-P-PS(S). The paper's §5.2 claim is that ICR duplicates the hot
// data automatically, "we do not need a separate cache" ([11]). Here we
// measure it: reliability under random injection (unrecoverable loads) and
// the performance cost, for R-Cache sizes 16/64/256 words.
#include "bench/common/bench_common.h"

using namespace icr;

int main(int argc, char** argv) {
  icr::bench::init(argc, argv);
  bench::print_header(
      "Baseline", "BaseP + R-Cache (Kim&Somani-style duplication buffer) vs "
                  "ICR-P-PS(S), random injection P=1e-3 (vortex, parser)");

  struct Row {
    std::string label;
    core::Scheme scheme;
    std::uint32_t rcache;
  };
  const std::vector<Row> rows = {
      {"BaseP", core::Scheme::BaseP(), 0},
      {"BaseP+RC16", core::Scheme::BaseP(), 16},
      {"BaseP+RC64", core::Scheme::BaseP(), 64},
      {"BaseP+RC256", core::Scheme::BaseP(), 256},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S(), 0},
  };

  for (const trace::App app : {trace::App::kVortex, trace::App::kParser}) {
    TextTable t(std::string("app: ") + trace::to_string(app),
                {"scheme", "unrecoverable", "rcache-fix", "replica-fix",
                 "rc hit rate", "norm. cycles"});
    std::uint64_t base_cycles = 0;
    for (const Row& row : rows) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_probability = 1e-3;
      cfg.rcache_entries = row.rcache;
      const sim::RunResult r = sim::run_one(app, row.scheme, cfg);
      if (base_cycles == 0) base_cycles = r.cycles;
      t.add_row({row.label, std::to_string(r.dl1.unrecoverable_loads),
                 std::to_string(r.dl1.errors_corrected_by_rcache),
                 std::to_string(r.dl1.errors_corrected_by_replica),
                 format_double(r.rcache.hit_rate(), 3),
                 format_double(static_cast<double>(r.cycles) /
                                   static_cast<double>(base_cycles),
                               3)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Reading: the R-Cache needs hundreds of dedicated entries to approach\n"
      "the dirty-data coverage ICR gets for free from dead lines already in\n"
      "the cache.\n");
  return 0;
}
