// Quickstart: simulate one SPEC2000-like application under the paper's two
// headline schemes and print the metrics the paper reports.
//
//   $ ./quickstart [app] [instructions]
//   $ ./quickstart mcf 500000
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/experiment.h"
#include "src/util/table.h"

using namespace icr;

int main(int argc, char** argv) {
  // Pick the application (default: gzip) and run length.
  trace::App app = trace::App::kGzip;
  if (argc > 1) {
    const std::string name = argv[1];
    bool found = false;
    for (trace::App a : trace::all_apps()) {
      if (name == trace::to_string(a)) {
        app = a;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown app '%s' (try: gzip vpr gcc mcf parser "
                           "mesa vortex bzip2)\n",
                   name.c_str());
      return 1;
    }
  }
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

  std::printf("ICR quickstart: %s, %llu instructions, Table-1 machine\n\n",
              trace::to_string(app),
              static_cast<unsigned long long>(instructions));

  // The three-line API: pick a scheme, build a Simulator, run it.
  TextTable t("BaseP vs BaseECC vs ICR-P-PS(S)",
              {"metric", "BaseP", "BaseECC", "ICR-P-PS(S)"});
  std::vector<sim::RunResult> results;
  for (const core::Scheme& scheme :
       {core::Scheme::BaseP(), core::Scheme::BaseECC(),
        core::Scheme::IcrPPS_S().with_decay_window(1000).with_victim_policy(
            core::ReplicaVictimPolicy::kDeadFirst)}) {
    sim::Simulator simulator(sim::SimConfig::table1(), scheme,
                             trace::profile_for(app));
    results.push_back(simulator.run(instructions));
  }

  auto row = [&](const std::string& name, auto metric, int precision) {
    t.add_numeric_row(
        name, {metric(results[0]), metric(results[1]), metric(results[2])},
        precision);
  };
  row("execution cycles", [](const sim::RunResult& r) {
    return static_cast<double>(r.cycles);
  }, 0);
  row("IPC", [](const sim::RunResult& r) { return r.ipc(); }, 3);
  row("dL1 miss rate", [](const sim::RunResult& r) {
    return r.dl1.miss_rate();
  }, 4);
  row("replication ability", [](const sim::RunResult& r) {
    return r.dl1.replication_ability();
  }, 3);
  row("loads with replica", [](const sim::RunResult& r) {
    return r.dl1.loads_with_replica_fraction();
  }, 3);
  row("L1+L2 energy (uJ)", [](const sim::RunResult& r) {
    return r.energy.total_nj() / 1000.0;
  }, 1);
  t.print();

  std::printf(
      "\nReading: ICR-P-PS(S) keeps the 1-cycle loads of BaseP while most\n"
      "read hits also have an in-cache replica to recover from; BaseECC\n"
      "pays 2 cycles on every load hit for comparable coverage.\n");
  return 0;
}
