// Custom workload: shows how a downstream user plugs their own memory
// behaviour into the library — build a WorkloadProfile from scratch (or
// implement trace::TraceSource directly) and evaluate ICR on it.
//
// The example models a small in-memory key-value store: a very hot index
// (Zipf), a large value heap (pointer chase), and an append log
// (sequential), with a high store fraction.
#include <cstdio>

#include "src/sim/simulator.h"
#include "src/util/table.h"

using namespace icr;

int main() {
  trace::WorkloadProfile kv;
  kv.name = "kvstore";
  kv.load_frac = 0.30;
  kv.store_frac = 0.18;  // write heavy: replication triggers often
  kv.branch_frac = 0.12;
  kv.patterns = {
      // hot index: 8KB, heavily skewed
      {trace::PatternSpec::Kind::kZipf, 0.55, 8 * 1024, 1.3, 8, 64},
      // value heap: 1MB pointer chase, 128-byte nodes
      {trace::PatternSpec::Kind::kChase, 0.25, 1024 * 1024, 0.0, 8, 128},
      // append log: sequential
      {trace::PatternSpec::Kind::kSequential, 0.20, 2 * 1024 * 1024, 0.0, 8,
       64},
  };
  kv.dependent_load_frac = 0.5;
  kv.hard_branch_frac = 0.15;
  kv.code_footprint_bytes = 12 * 1024;
  kv.seed = 2026;

  std::printf("Custom workload '%s' under four protection schemes\n\n",
              kv.name.c_str());

  TextTable t("kvstore results",
              {"scheme", "cycles", "IPC", "dL1 miss", "loads w/ replica",
               "repl.ability"});
  for (const core::Scheme& scheme :
       {core::Scheme::BaseP(), core::Scheme::BaseECC(),
        core::Scheme::IcrPPS_S(), core::Scheme::IcrEccPS_S()}) {
    sim::Simulator simulator(sim::SimConfig::table1(), scheme, kv);
    const sim::RunResult r = simulator.run(250000);
    // For a write-heavy workload the interesting question is: what fraction
    // of read hits would have a replica to fall back on?
    t.add_row({r.scheme, std::to_string(r.cycles), format_double(r.ipc(), 3),
               format_double(r.dl1.miss_rate(), 4),
               format_double(r.dl1.loads_with_replica_fraction(), 3),
               format_double(r.dl1.replication_ability(), 3)});
  }
  t.print();

  std::printf(
      "\nBecause the store fraction is high, ICR replicates eagerly: a\n"
      "write-heavy service gets most of its hot reads covered by replicas\n"
      "without paying ECC latency on every access.\n");
  return 0;
}
