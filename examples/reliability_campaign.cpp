// Reliability campaign: inject transient faults into the dL1 at a chosen
// per-cycle rate under each fault model, and report how every protection
// scheme detects / corrects / loses data — end to end, on real stored bits.
//
//   $ ./reliability_campaign [per_cycle_probability] [instructions]
//   $ ./reliability_campaign 1e-3 300000
#include <cstdio>
#include <cstdlib>

#include "src/sim/experiment.h"
#include "src/util/table.h"

using namespace icr;

int main(int argc, char** argv) {
  const double probability = argc > 1 ? std::atof(argv[1]) : 1e-3;
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  std::printf("Fault-injection campaign: vortex, P(error)=%g per cycle, "
              "%llu instructions\n",
              probability, static_cast<unsigned long long>(instructions));

  const std::vector<sim::SchemeVariant> schemes = {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };

  for (const auto model :
       {fault::FaultModel::kRandom, fault::FaultModel::kAdjacent,
        fault::FaultModel::kColumn, fault::FaultModel::kDirect}) {
    TextTable t(std::string("fault model: ") + fault::to_string(model),
                {"scheme", "injections", "detected", "replica-fix", "ecc-fix",
                 "refetch-fix", "unrecoverable", "silent"});
    for (const auto& v : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = model;
      cfg.fault_probability = probability;
      const sim::RunResult r =
          sim::run_one(trace::App::kVortex, v.scheme, cfg, instructions);
      t.add_row({v.label, std::to_string(r.faults.injections),
                 std::to_string(r.dl1.errors_detected),
                 std::to_string(r.dl1.errors_corrected_by_replica),
                 std::to_string(r.dl1.errors_corrected_by_ecc),
                 std::to_string(r.dl1.errors_refetched_from_l2),
                 std::to_string(r.dl1.unrecoverable_loads),
                 std::to_string(r.pipeline.silent_corrupt_loads)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Reading: 'silent' are loads that returned wrong data with no error\n"
      "signal at all (e.g. an even number of flips within one parity byte);\n"
      "'unrecoverable' were detected but the dirty data had no good copy.\n");
  return 0;
}
