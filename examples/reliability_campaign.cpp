// Reliability campaign: inject transient faults into the dL1 at a chosen
// per-cycle rate under each fault model, and report how every protection
// scheme detects / corrects / loses data — end to end, on real stored bits.
//
// Every (scheme, fault model, trial) combination is one cell of a single
// parallel campaign (src/sim/campaign.h). With trials > 1 each trial gets
// its own SplitMix64-derived workload and injection seed, and the table
// reports per-trial means — same numbers on every machine and thread count.
//
//   $ ./reliability_campaign [per_cycle_probability] [instructions] [trials]
//   $ ./reliability_campaign 1e-3 300000 8
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/sim/campaign.h"
#include "src/util/table.h"

using namespace icr;

int main(int argc, char** argv) {
  const double probability = argc > 1 ? std::atof(argv[1]) : 1e-3;
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;
  const std::uint32_t trials =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 1;

  const std::vector<sim::SchemeVariant> schemes = {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
  const std::vector<fault::FaultModel> models = {
      fault::FaultModel::kRandom, fault::FaultModel::kAdjacent,
      fault::FaultModel::kColumn, fault::FaultModel::kDirect};

  // The whole report is one campaign: (model x scheme) variants, each with
  // its own injection config, `trials` repetitions per variant.
  sim::CampaignSpec spec;
  spec.apps = {trace::App::kVortex};
  spec.instructions = instructions;
  spec.trials = trials == 0 ? 1 : trials;
  spec.derive_seeds = spec.trials > 1;  // trial 0 alone keeps legacy seeds
  for (const fault::FaultModel model : models) {
    for (const sim::SchemeVariant& v : schemes) {
      sim::SimConfig cfg = sim::SimConfig::table1();
      cfg.fault_model = model;
      cfg.fault_probability = probability;
      spec.variants.emplace_back(v.label, v.scheme, cfg);
    }
  }

  const sim::CampaignRunner runner;
  std::printf("Fault-injection campaign: vortex, P(error)=%g per cycle, "
              "%llu instructions, %u trial(s), %u thread(s)\n",
              probability, static_cast<unsigned long long>(instructions),
              spec.trials, runner.threads());

  const sim::CampaignResult campaign = runner.run(spec);

  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    TextTable t(std::string("fault model: ") + fault::to_string(models[mi]) +
                    (spec.trials > 1 ? " (mean over trials)" : ""),
                {"scheme", "injections", "detected", "replica-fix", "ecc-fix",
                 "refetch-fix", "unrecoverable", "silent"});
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const std::size_t variant_idx = mi * schemes.size() + si;
      double injections = 0, detected = 0, replica_fix = 0, ecc_fix = 0,
             refetch_fix = 0, unrecoverable = 0, silent = 0;
      for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
        const sim::RunResult& r =
            campaign.at(variant_idx, 0, trial, 1, spec.trials).result;
        injections += static_cast<double>(r.faults.injections);
        detected += static_cast<double>(r.dl1.errors_detected);
        replica_fix += static_cast<double>(r.dl1.errors_corrected_by_replica);
        ecc_fix += static_cast<double>(r.dl1.errors_corrected_by_ecc);
        refetch_fix += static_cast<double>(r.dl1.errors_refetched_from_l2);
        unrecoverable += static_cast<double>(r.dl1.unrecoverable_loads);
        silent += static_cast<double>(r.pipeline.silent_corrupt_loads);
      }
      const double n = static_cast<double>(spec.trials);
      auto cell = [&](double sum) {
        return spec.trials > 1 ? format_double(sum / n, 1)
                               : std::to_string(static_cast<long long>(sum));
      };
      t.add_row({schemes[si].label, cell(injections), cell(detected),
                 cell(replica_fix), cell(ecc_fix), cell(refetch_fix),
                 cell(unrecoverable), cell(silent)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("campaign: %zu cells in %.2fs (%.1f cells/sec, config hash "
              "%016llx)\n\n",
              campaign.cells.size(), campaign.meta.wall_seconds,
              campaign.meta.cells_per_second,
              static_cast<unsigned long long>(campaign.meta.config_hash));
  std::printf(
      "Reading: 'silent' are loads that returned wrong data with no error\n"
      "signal at all (e.g. an even number of flips within one parity byte);\n"
      "'unrecoverable' were detected but the dirty data had no good copy.\n");
  return 0;
}
