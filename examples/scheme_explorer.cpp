// Scheme explorer: run all ten §3.2 protection schemes on one application
// and print the full performance / replication / energy comparison —
// essentially a one-app slice through Figures 6-9.
//
//   $ ./scheme_explorer [app] [instructions]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/experiment.h"
#include "src/util/table.h"

using namespace icr;

int main(int argc, char** argv) {
  trace::App app = trace::App::kVpr;
  if (argc > 1) {
    const std::string name = argv[1];
    for (trace::App a : trace::all_apps()) {
      if (name == trace::to_string(a)) app = a;
    }
  }
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 250000;

  std::printf("All ten paper schemes on %s (%llu instructions)\n\n",
              trace::to_string(app),
              static_cast<unsigned long long>(instructions));

  TextTable t("scheme comparison",
              {"scheme", "norm.cycles", "IPC", "dL1 miss", "repl.ability",
               "loads w/ replica", "norm.energy"});
  sim::RunResult base;
  for (const core::Scheme& scheme : core::Scheme::all_paper_schemes()) {
    const sim::RunResult r =
        sim::run_one(app, scheme, sim::SimConfig::table1(), instructions);
    if (scheme.name == "BaseP") base = r;
    t.add_row({r.scheme, format_double(sim::normalized_cycles(r, base), 3),
               format_double(r.ipc(), 3),
               format_double(r.dl1.miss_rate(), 4),
               format_double(r.dl1.replication_ability(), 3),
               format_double(r.dl1.loads_with_replica_fraction(), 3),
               format_double(sim::normalized_energy(r, base), 3)});
  }
  t.print();

  std::printf(
      "\nThe paper's two recommended design points are ICR-P-PS(S) (almost\n"
      "BaseP performance, replicas for hot data) and ICR-ECC-PS(S) (full\n"
      "ECC floor for cold data, parity-fast loads for hot data).\n");
  return 0;
}
