// Software-directed replication (paper §6 future work): the program tells
// the cache which data deserves replicas — critical state gets two copies,
// regenerable scratch data gets none — and the cache spends its dead-block
// space accordingly.
#include <cstdio>

#include "src/core/replication_hints.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"

using namespace icr;

namespace {

// Runs vpr under ICR-P-PS(S), optionally with a hint table, and reports
// where the replicas went.
sim::RunResult run(const core::ReplicationHints* hints,
                   std::uint64_t instructions) {
  core::ReplicationConfig rep;
  rep.fallback = core::FallbackStrategy::kMultiAttempt;
  rep.extra_attempts = {core::Distance::quarter()};
  const core::Scheme scheme =
      core::Scheme::IcrPPS_S().with_replication(rep).with_decay_window(1000);
  static sim::SimConfig cfg = sim::SimConfig::table1();
  sim::Simulator simulator(cfg, scheme,
                           trace::profile_for(trace::App::kVpr));
  simulator.dl1().set_replication_hints(hints);
  return simulator.run(instructions);
}

}  // namespace

int main() {
  constexpr std::uint64_t kInstructions = 250000;

  // vpr's first pattern region (the hot Zipf set) starts at 0x10000000 and
  // the strided grid at 0x20000000 (see SyntheticWorkload's region layout).
  core::ReplicationHints hints;
  // Critical hot structures: allow two replicas.
  hints.add_range(0x1000'0000ULL, 0x2000'0000ULL, 2);
  // Strided scratch grid: regenerable, never replicate.
  hints.add_range(0x2000'0000ULL, 0x3000'0000ULL, 0);

  const sim::RunResult plain = run(nullptr, kInstructions);
  const sim::RunResult hinted = run(&hints, kInstructions);

  TextTable t("software-directed replication (vpr, ICR-P-PS(S))",
              {"metric", "hardware-only", "with hints"});
  t.add_numeric_row("replication ability",
                    {plain.dl1.replication_ability(),
                     hinted.dl1.replication_ability()});
  t.add_numeric_row("loads with replica",
                    {plain.dl1.loads_with_replica_fraction(),
                     hinted.dl1.loads_with_replica_fraction()});
  t.add_numeric_row(">=2 replicas per opportunity",
                    {plain.dl1.multi_replica_fraction(true),
                     hinted.dl1.multi_replica_fraction(true)});
  t.add_numeric_row("dL1 miss rate",
                    {plain.dl1.miss_rate(), hinted.dl1.miss_rate()}, 4);
  t.add_numeric_row("execution cycles",
                    {static_cast<double>(plain.cycles),
                     static_cast<double>(hinted.cycles)}, 0);
  t.print();

  std::printf(
      "\nWith hints, the dead-block space is spent only on data the software\n"
      "declared critical: the hot set gets double replicas (NMR-grade\n"
      "protection) while the regenerable grid gets none.\n");
  return 0;
}
